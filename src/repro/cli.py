"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``     solve a benchmark size (or a TSPLIB file) with TAXI
``compare``   run TAXI against the comparator solvers on one instance
``batch``     fan a set of instances over seeded replicas (process pool)
``sweep``     sweep one solver parameter over a value list
``scenarios``  list or run the named workload scenarios
``serve``     run the solve service (HTTP, content-addressed result cache)
``loadtest``  drive the solve service with seeded traffic, report latency
``solvers``   list the solver registry
``bench``     time the kernel backends and write ``BENCH_<rev>.json``
``table1``    print the Table I circuit-simulation reproduction
``devices``   print the SOT-MRAM switching operating points
``bench-info``  list the benchmark registry

Examples::

    python -m repro solve --size 1060 --bits 4 --sweeps 300
    python -m repro solve --size 262 --workers 4   # cluster-parallel pipeline
    python -m repro solve --tsplib path/to/instance.tsp
    python -m repro compare --size 318
    python -m repro batch --instances 76 101 200 262 --replicas 4 --workers 4
    python -m repro sweep --size 318 --param sweeps --values 30 60 120
    python -m repro batch --instances 200 --solver sa_tsp --backend reference
    python -m repro scenarios
    python -m repro scenarios --run ring-ladder --sweeps 60 --replicas 2
    python -m repro serve --port 8080 --workers 2
    python -m repro loadtest --instances 101 --concurrency 8 --requests 200
    python -m repro loadtest --http http://127.0.0.1:8080 --requests 50
    python -m repro bench --quick
    python -m repro table1
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import ascii_table, batch_table, format_seconds
from repro.core import TAXIConfig, TAXISolver
from repro.tsp.benchmarks import BENCHMARK_SIZES, benchmark_spec


#: bench --grid name -> the argparse attribute holding that grid's sizes.
_BENCH_GRID_SIZE_ARGS = {
    "ising": "ising_sizes",
    "sa_tsp": "tsp_sizes",
    "engine": "engine_sizes",
    "pipeline": "pipeline_sizes",
    "service": "service_sizes",
    "loadtest": "loadtest_sizes",
    "replica_batch": "replica_batch_sizes",
    "scale": "scale_sizes",
    "portfolio": "portfolio_sizes",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TAXI (DAC 2025) reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser(
        "solve", help="solve one instance (TAXI, or any registered solver)"
    )
    _instance_args(solve)
    solve.add_argument("--solver", default="taxi",
                       help="registered solver name (see `repro solvers`); "
                            "'portfolio' races a deadline-aware arm set")
    solve.add_argument("--budget", type=float, default=None,
                       help="portfolio compute budget in seconds "
                            "(default 2.0; drives the planned arm set)")
    solve.add_argument("--portfolio-mode", choices=("best", "first"),
                       default="best",
                       help="best: race every planned arm; first: stop at "
                            "the first acceptable arm and cancel the rest")
    solve.add_argument("--trajectory-dir", default=None,
                       help="directory of BENCH_*/LOADTEST_* payloads that "
                            "tune portfolio arm cost estimates "
                            "(default: static table)")
    solve.add_argument("--cluster-size", type=int, default=12,
                       help="maximum cluster size (macro capacity)")
    solve.add_argument("--bits", type=int, default=4, help="W_D bit precision")
    solve.add_argument("--sweeps", type=int, default=None,
                       help="annealing sweeps (default: full 1341-sweep ramp)")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--clustering", choices=("ward", "kmeans"), default="ward")
    solve.add_argument("--backend",
                       choices=("auto", "reference", "fast", "array"),
                       default="auto", help="annealing kernel backend")
    solve.add_argument("--no-fixing", action="store_true",
                       help="disable inter-cluster endpoint fixing")
    solve.add_argument("--workers", type=int, default=1,
                       help="wavefront pool width for the cluster-parallel "
                            "pipeline (any width is bit-identical to 1)")
    solve.add_argument("--reference", action="store_true",
                       help="also compute the Concorde-surrogate reference")

    compare = sub.add_parser("compare", help="TAXI vs comparator solvers")
    _instance_args(compare)
    compare.add_argument("--sweeps", type=int, default=134)
    compare.add_argument("--seed", type=int, default=0)

    batch = sub.add_parser(
        "batch", help="solve a batch of instances over seeded replicas"
    )
    batch.add_argument(
        "--instances", nargs="+", default=["76", "101", "200", "262"],
        metavar="SPEC",
        help="instance tokens: benchmark size/name, TSPLIB path, or "
             "family:n[:seed] generator spec",
    )
    _engine_args(batch)
    batch.add_argument("--csv", type=str, default=None,
                       help="also export the summary table as CSV")

    sweep = sub.add_parser(
        "sweep", help="sweep one solver parameter over a value list"
    )
    _instance_args(sweep)
    _engine_args(sweep)
    sweep.add_argument("--param", required=True,
                       help="solver parameter to sweep (e.g. sweeps, bits)")
    sweep.add_argument("--values", nargs="+", required=True,
                       help="values to sweep (parsed as int/float/bool/str)")

    scenarios = sub.add_parser(
        "scenarios", help="list or run the named workload scenarios"
    )
    scenarios.add_argument("--run", metavar="NAME", default=None,
                           help="run one scenario through the batch engine "
                                "(default: list the registry)")
    _engine_args(scenarios)
    # No --solver means "the scenario's own default solver", so the
    # shared engine default of "taxi" must not mask Scenario.solver.
    scenarios.set_defaults(solver=None)
    scenarios.add_argument("--csv", type=str, default=None,
                           help="also export the summary table as CSV")

    serve = sub.add_parser(
        "serve", help="run the solve service (HTTP, result caching)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--workers", type=int, default=1,
                       help="process-pool width for dispatched solve batches")
    serve.add_argument("--shards", type=int, default=1,
                       help="shard the service across N worker processes "
                            "behind a routing front-end (fingerprints are "
                            "hash-routed, each shard owns its own queue, "
                            "cache, and pool; 1 = single process)")
    serve.add_argument("--arena", choices=("auto", "on", "off"),
                       default="auto",
                       help="shared-memory instance arena (auto = enabled "
                            "when workers > 1)")
    serve.add_argument("--request-timeout", type=float, default=30.0,
                       metavar="SECONDS",
                       help="per-connection socket timeout; frees handler "
                            "threads pinned by stalled or half-open clients")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="max admitted-but-unsolved requests (backpressure)")
    serve.add_argument("--batch-window", type=float, default=0.02,
                       help="seconds to micro-batch compatible requests")
    serve.add_argument("--max-batch", type=int, default=16,
                       help="max requests grouped into one dispatch")
    serve.add_argument("--cache-size", type=int, default=256,
                       help="result-cache capacity (LRU entries)")
    serve.add_argument("--cache-path", default=None,
                       help="JSON file for cache persistence across restarts")
    serve.add_argument("--default-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="deadline applied to requests that do not "
                            "send deadline_seconds themselves")
    serve.add_argument("--max-retries", type=int, default=3,
                       help="pool-respawn and transient-retry budget "
                            "per dispatch")
    serve.add_argument("--chaos-seed", type=int, default=None,
                       metavar="SEED",
                       help="enable server-side chaos injection with this "
                            "fault-schedule seed (worker kills, slow "
                            "solves, transient errors)")
    serve.add_argument("--chaos-kill-rate", type=float, default=0.08,
                       help="chaos: per-dispatch worker SIGKILL probability")
    serve.add_argument("--chaos-slow-rate", type=float, default=0.10,
                       help="chaos: per-task slow-solve probability")
    serve.add_argument("--chaos-slow-seconds", type=float, default=0.25,
                       help="chaos: max injected slow-solve delay")
    serve.add_argument("--chaos-transient-rate", type=float, default=0.05,
                       help="chaos: per-task transient-exception probability")
    serve.add_argument("--verbose", action="store_true",
                       help="log each HTTP request to stderr")

    loadtest = sub.add_parser(
        "loadtest",
        help="drive the solve service with seeded traffic and report "
             "latency percentiles, req/s, and cache behavior",
    )
    loadtest.add_argument("--instances", nargs="+", default=["101"],
                          metavar="SPEC",
                          help="instance tokens cold requests draw from "
                               "(registry size/name, TSPLIB path, "
                               "family:n[:seed] spec, or scenario:<name> "
                               "to expand a workload scenario)")
    loadtest.add_argument("--requests", type=int, default=100,
                          help="total requests in the schedule")
    loadtest.add_argument("--concurrency", type=int, default=8,
                          help="closed-loop worker count")
    loadtest.add_argument("--warm-ratio", type=float, default=0.5,
                          help="fraction of requests repeating an earlier "
                               "fingerprint (guaranteed cache hits)")
    loadtest.add_argument("--mode", choices=("closed", "open"),
                          default="closed",
                          help="closed-loop (issue on completion) or "
                               "open-loop (seeded Poisson arrivals)")
    loadtest.add_argument("--rate", type=float, default=50.0,
                          help="open-loop mean arrivals per second")
    loadtest.add_argument("--seed", type=int, default=0,
                          help="master seed (fully determines the schedule)")
    loadtest.add_argument("--solver", default="taxi",
                          help="registered solver name")
    loadtest.add_argument("--sweeps", type=int, default=30,
                          help="annealing sweeps per request")
    loadtest.add_argument("--set", action="append", default=[],
                          metavar="KEY=VALUE",
                          help="extra solver parameter (repeatable)")
    loadtest.add_argument("--http", default=None, metavar="URL",
                          help="drive a running repro serve at URL instead "
                               "of an in-process service")
    loadtest.add_argument("--workers", type=int, default=1,
                          help="in-process service pool width")
    loadtest.add_argument("--shards", type=int, default=1,
                          help="spawn a sharded fleet of N service "
                               "processes for the run and route to it "
                               "client-side by fingerprint")
    loadtest.add_argument("--timeout", type=float, default=300.0,
                          help="per-request completion timeout (seconds)")
    loadtest.add_argument("--deadline", type=float, default=None,
                          metavar="SECONDS",
                          help="per-request deadline_seconds sent with "
                               "every request")
    loadtest.add_argument("--max-retries", type=int, default=3,
                          help="client retries per request on 503 shed "
                               "responses (honors Retry-After)")
    loadtest.add_argument("--chaos", action="store_true",
                          help="inject seeded faults (worker kills, slow "
                               "solves, transient errors) into the "
                               "in-process service while driving it")
    loadtest.add_argument("--chaos-seed", type=int, default=None,
                          help="fault-schedule seed (default: --seed)")
    loadtest.add_argument("--chaos-kill-rate", type=float, default=0.08,
                          help="chaos: per-dispatch worker SIGKILL "
                               "probability")
    loadtest.add_argument("--chaos-slow-rate", type=float, default=0.10,
                          help="chaos: per-task slow-solve probability")
    loadtest.add_argument("--chaos-slow-seconds", type=float, default=0.25,
                          help="chaos: max injected slow-solve delay")
    loadtest.add_argument("--chaos-transient-rate", type=float, default=0.05,
                          help="chaos: per-task transient-exception "
                               "probability")
    loadtest.add_argument("--out", default=".",
                          help="output directory or explicit .json path "
                               "(default: LOADTEST_<rev>.json in the cwd)")

    bench = sub.add_parser(
        "bench", help="time kernel backends over a solver x size grid"
    )
    bench.add_argument("--quick", action="store_true",
                       help="small grid (still covers the headline cells)")
    bench.add_argument("--grid", choices=tuple(_BENCH_GRID_SIZE_ARGS),
                       default=None,
                       help="run only one grid kind (explicit --*-sizes "
                            "lists still apply)")
    bench.add_argument("--out", default=".",
                       help="output directory or explicit .json path "
                            "(default: BENCH_<rev>.json in the cwd)")
    bench.add_argument("--repeats", type=int, default=3,
                       help="timing repetitions per cell (best-of)")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--replicas", type=int, default=2,
                       help="replicas per engine cell")
    bench.add_argument("--ising-sizes", nargs="*", type=int, default=None,
                       help="Metropolis spin counts (empty list skips)")
    bench.add_argument("--tsp-sizes", nargs="*", type=int, default=None,
                       help="SA-TSP city counts (empty list skips)")
    bench.add_argument("--engine-sizes", nargs="*", type=int, default=None,
                       help="engine-cell instance sizes (empty list skips)")
    bench.add_argument("--engine-solvers", nargs="*", default=None,
                       help="registered solvers for the engine cells")
    bench.add_argument("--pipeline-sizes", nargs="*", type=int, default=None,
                       help="hierarchical-pipeline instance sizes "
                            "(empty list skips)")
    bench.add_argument("--pipeline-workers", nargs="*", type=int,
                       default=(1, 4),
                       help="wavefront pool widths for the pipeline cells")
    bench.add_argument("--service-sizes", nargs="*", type=int, default=None,
                       help="solve-service instance sizes (empty list skips)")
    bench.add_argument("--loadtest-sizes", nargs="*", type=int, default=None,
                       help="loadgen-cell instance sizes (empty list skips)")
    bench.add_argument("--replica-batch-sizes", nargs="*", type=int,
                       default=None,
                       help="replica lock-step cell instance sizes "
                            "(empty list skips)")
    bench.add_argument("--scale-sizes", nargs="*", type=int, default=None,
                       help="sparse-path scale-ladder sizes (single run "
                            "per cell; empty list skips)")
    bench.add_argument("--portfolio-sizes", nargs="*", type=int, default=None,
                       help="portfolio-cell instance sizes (empty list "
                            "skips)")
    bench.add_argument("--portfolio-deadlines", nargs="*", type=float,
                       default=(0.5, 2.0),
                       help="deadline budgets (seconds) per portfolio cell")
    bench.add_argument("--replica-batch-replicas", type=int, default=8,
                       help="replicas per lock-step cell")
    bench.add_argument("--replica-batch-sweeps", type=int, default=60)
    bench.add_argument("--loadtest-requests", type=int, default=32,
                       help="requests per loadgen cell")
    bench.add_argument("--loadtest-concurrency", type=int, default=4,
                       help="closed-loop workers per loadgen cell")
    bench.add_argument("--ising-sweeps", type=int, default=200)
    bench.add_argument("--tsp-sweeps", type=int, default=400)
    bench.add_argument("--engine-sweeps", type=int, default=30)
    bench.add_argument("--pipeline-sweeps", type=int, default=60)
    bench.add_argument("--service-sweeps", type=int, default=30)
    bench.add_argument("--loadtest-sweeps", type=int, default=30)

    sub.add_parser("solvers", help="list the solver registry")
    sub.add_parser("table1", help="print the Table I reproduction")
    sub.add_parser("devices", help="print SOT-MRAM operating points")
    sub.add_parser("bench-info", help="list the benchmark registry")
    return parser


def _instance_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("instance", nargs="?", default=None,
                        help="instance token: family:n[:seed] (e.g. "
                             "clustered:100000:7), a benchmark size, or a "
                             "TSPLIB path")
    group = parser.add_mutually_exclusive_group(required=False)
    group.add_argument("--size", type=int,
                       help="benchmark registry size (other sizes get a "
                            "seeded uniform instance)")
    group.add_argument("--tsplib", type=str, help="path to a TSPLIB file")


def _engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--solver", default="taxi",
                        help="registered solver name (see `repro solvers`)")
    parser.add_argument("--replicas", type=int, default=4,
                        help="seeded solver starts per instance")
    parser.add_argument("--workers", type=int, default=None,
                        help="process-pool width (default: cpu count; "
                             "1 = serial, bit-identical to parallel)")
    parser.add_argument("--seed", type=int, default=0, help="master seed")
    parser.add_argument("--sweeps", type=int, default=None,
                        help="annealing sweeps (stochastic solvers)")
    parser.add_argument("--backend",
                        choices=("auto", "reference", "fast", "array"),
                        default=None,
                        help="annealing kernel backend (default: auto -> fast)")
    parser.add_argument("--replica-batch", choices=("auto", "on", "off"),
                        default="auto",
                        help="replica lock-step batching: fold same-shape "
                             "replicas into one kernel batch (auto engages "
                             "on --backend array; tours are bit-identical "
                             "either way)")
    parser.add_argument("--set", action="append", default=[], metavar="KEY=VALUE",
                        help="extra solver parameter (repeatable)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-replica progress lines")


def _instance_token(args: argparse.Namespace):
    """The instance token an ``_instance_args`` command was given.

    The positional token and the legacy ``--size``/``--tsplib`` flags
    are mutually exclusive; with neither, the paper's syn318 default.
    """
    token = getattr(args, "instance", None)
    if token is not None:
        if getattr(args, "size", None) is not None or getattr(args, "tsplib", None):
            raise SystemExit(
                "give either a positional instance token or "
                "--size/--tsplib, not both"
            )
        return token
    if getattr(args, "tsplib", None):
        return args.tsplib
    size = getattr(args, "size", None)
    return 318 if size is None else size


def _load_instance(args: argparse.Namespace):
    from repro.engine import resolve_instance

    return resolve_instance(_instance_token(args))


def _parse_value(text: str):
    """CLI value parsing for solver params: int, float, bool, else str."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("none", "null"):
        return None
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _solver_params(args: argparse.Namespace) -> dict:
    params: dict = {}
    if getattr(args, "sweeps", None) is not None:
        params["sweeps"] = args.sweeps
    if getattr(args, "backend", None) is not None:
        params["backend"] = args.backend
    for item in getattr(args, "set", []):
        key, separator, value = item.partition("=")
        if not separator or not key:
            raise SystemExit(f"--set expects KEY=VALUE, got {item!r}")
        params[key] = _parse_value(value)
    return params


def cmd_solve(args: argparse.Namespace) -> int:
    from repro.utils.hashing import tour_hash

    instance = _load_instance(args)
    if args.solver == "portfolio":
        return _solve_portfolio(args, instance)
    if args.solver != "taxi":
        from repro.engine import solve_with

        params: dict = {}
        if args.sweeps is not None:
            params["sweeps"] = args.sweeps
        tour = solve_with(
            args.solver, instance, seed=args.seed, backend=args.backend,
            **params,
        )
        print(f"instance      : {instance.name} ({instance.n} cities)")
        print(f"solver        : {args.solver}")
        print(f"tour length   : {tour.length:.0f}")
        print(f"tour hash     : {tour_hash(tour.order)}")
        return 0
    config = TAXIConfig(
        max_cluster_size=args.cluster_size,
        bits=args.bits,
        sweeps=args.sweeps,
        seed=args.seed,
        clustering=args.clustering,
        endpoint_fixing=not args.no_fixing,
        backend=args.backend,
        workers=args.workers,
    )
    result = TAXISolver(config).solve(instance)
    # The tour hash makes worker-count parity checkable from the CLI:
    # identical hashes mean bit-identical tours, not just equal lengths.
    # Shared with the service layer, so `repro serve` results are
    # directly comparable.
    print(f"instance      : {instance.name} ({instance.n} cities)")
    print(f"tour length   : {result.tour.length:.0f}")
    print(f"tour hash     : {tour_hash(result.tour.order)}")
    print(f"hierarchy     : {result.hierarchy_depth} levels, "
          f"{result.total_subproblems} sub-problems")
    for phase, seconds in result.phase_seconds.as_dict().items():
        print(f"  {phase:<10s}: {format_seconds(seconds)}")
    if args.reference:
        from repro.baselines import reference_length

        reference = reference_length(instance)
        print(f"reference     : {reference:.0f}")
        print(f"optimal ratio : {result.optimal_ratio(reference):.4f}")
    return 0


def _solve_portfolio(args: argparse.Namespace, instance) -> int:
    """``repro solve --solver portfolio``: race arms, print the ledger."""
    from repro.engine.portfolio import solve_portfolio
    from repro.utils.hashing import tour_hash

    result = solve_portfolio(
        instance,
        seed=args.seed,
        budget_seconds=args.budget if args.budget is not None else 2.0,
        mode=args.portfolio_mode,
        trajectory=args.trajectory_dir,
    )
    print(f"instance      : {instance.name} ({instance.n} cities)")
    print(f"budget        : {result.budget_seconds:g}s ({result.mode})")
    print(f"winner        : {result.winner.label}")
    print(f"tour length   : {result.length:.0f}")
    print(f"tour hash     : {tour_hash(result.order)}")
    print(f"race wall     : {format_seconds(result.seconds)}")
    rows = [
        [
            outcome.arm.label,
            outcome.status,
            "-" if outcome.length is None else f"{outcome.length:.0f}",
            format_seconds(outcome.seconds),
            "warm" if outcome.warm else "",
        ]
        for outcome in result.outcomes
    ]
    print(ascii_table(
        ["arm", "status", "length", "wall", ""],
        rows, title="portfolio ledger",
    ))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.baselines import (
        CIMASolver,
        HVCSolver,
        IMASolver,
        NeuroIsingSolver,
        reference_length,
    )

    instance = _load_instance(args)
    reference = reference_length(instance)
    rows = []
    taxi = TAXISolver(TAXIConfig(sweeps=args.sweeps, seed=args.seed)).solve(instance)
    rows.append(["TAXI", f"{taxi.tour.length:.0f}",
                 f"{taxi.tour.length / reference:.3f}"])
    for solver in (
        HVCSolver(sweeps=args.sweeps, seed=args.seed),
        IMASolver(sweeps=args.sweeps, seed=args.seed),
        CIMASolver(sweeps=args.sweeps, seed=args.seed),
        NeuroIsingSolver(sweeps=args.sweeps, seed=args.seed),
    ):
        result = solver.solve(instance)
        rows.append([solver.name, f"{result.tour.length:.0f}",
                     f"{result.tour.length / reference:.3f}"])
    print(ascii_table(["solver", "length", "ratio vs reference"], rows,
                      title=f"{instance.name} ({instance.n} cities)"))
    return 0


def cmd_batch(args: argparse.Namespace) -> int:
    from repro.core import EngineConfig
    from repro.engine import BatchJob, run_batch

    job = BatchJob.create(
        args.instances,
        solver=args.solver,
        params=_solver_params(args),
        engine=EngineConfig(
            replicas=args.replicas, workers=args.workers, seed=args.seed,
            replica_batch=args.replica_batch,
        ),
    )
    progress = None if args.quiet else _print_progress
    results = run_batch(job, progress=progress)
    workers = job.engine.resolved_workers(len(job.instances) * args.replicas)
    print(batch_table(
        results,
        title=f"batch: solver={args.solver} replicas={args.replicas} "
              f"workers={workers} seed={args.seed}",
    ))
    if args.csv:
        from repro.analysis import write_batch_csv

        write_batch_csv(results, args.csv)
        print(f"wrote {args.csv}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core import EngineConfig
    from repro.engine import BatchJob, run_batch

    token = _instance_token(args)
    base_params = _solver_params(args)
    if args.param == "seed":
        raise SystemExit("sweep the master seed via --seed, not --param seed")
    rows = []
    for raw in args.values:
        value = _parse_value(raw)
        params = dict(base_params)
        params[args.param] = value
        job = BatchJob.create(
            [token],
            solver=args.solver,
            params=params,
            engine=EngineConfig(
                replicas=args.replicas, workers=args.workers, seed=args.seed,
                replica_batch=args.replica_batch,
            ),
        )
        progress = None if args.quiet else _print_progress
        result = run_batch(job, progress=progress)[0]
        rows.append([
            str(raw),
            f"{result.best_length:.0f}",
            f"{result.median_length:.0f}",
            f"{result.percentile(90):.0f}",
            format_seconds(result.wall_seconds),
        ])
    print(ascii_table(
        [args.param, "best", "median", "p90", "wall"],
        rows,
        title=f"sweep: {args.param} on {token} "
              f"(solver={args.solver}, replicas={args.replicas})",
    ))
    return 0


def cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.tsp.scenarios import get_scenario, scenario_job, scenario_names

    if args.run is None:
        rows = []
        for name in scenario_names():
            scenario = get_scenario(name)
            rows.append([
                name,
                str(len(scenario.tokens)),
                " ".join(scenario.tokens[:4])
                + (" ..." if len(scenario.tokens) > 4 else ""),
                scenario.description,
            ])
        print(ascii_table(["name", "instances", "tokens", "description"], rows,
                          title="scenario registry"))
        return 0

    from repro.analysis import batch_table
    from repro.engine import run_batch

    job = scenario_job(
        args.run,
        replicas=args.replicas,
        workers=args.workers,
        seed=args.seed,
        solver=args.solver,
        params=_solver_params(args),
        replica_batch=args.replica_batch,
    )
    progress = None if args.quiet else _print_progress
    results = run_batch(job, progress=progress)
    workers = job.engine.resolved_workers(len(job.instances) * args.replicas)
    print(batch_table(
        results,
        title=f"scenario {args.run}: solver={job.solver} "
              f"replicas={args.replicas} workers={workers} seed={args.seed}",
    ))
    if args.csv:
        from repro.analysis import write_batch_csv

        write_batch_csv(results, args.csv)
        print(f"wrote {args.csv}")
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.engine.bench import run_bench, write_bench

    if args.grid is not None:
        # Zero every other grid's sizes unless the user listed them
        # explicitly (an explicit --*-sizes always wins).
        for name, attr in _BENCH_GRID_SIZE_ARGS.items():
            if name != args.grid and getattr(args, attr) is None:
                setattr(args, attr, [])
    payload = run_bench(
        quick=args.quick,
        ising_sizes=args.ising_sizes,
        tsp_sizes=args.tsp_sizes,
        engine_solvers=args.engine_solvers,
        engine_sizes=args.engine_sizes,
        pipeline_sizes=args.pipeline_sizes,
        service_sizes=args.service_sizes,
        loadtest_sizes=args.loadtest_sizes,
        replica_batch_sizes=args.replica_batch_sizes,
        scale_sizes=args.scale_sizes,
        portfolio_sizes=args.portfolio_sizes,
        portfolio_deadlines=args.portfolio_deadlines,
        replica_batch_replicas=args.replica_batch_replicas,
        replica_batch_sweeps=args.replica_batch_sweeps,
        ising_sweeps=args.ising_sweeps,
        tsp_sweeps=args.tsp_sweeps,
        engine_sweeps=args.engine_sweeps,
        pipeline_sweeps=args.pipeline_sweeps,
        service_sweeps=args.service_sweeps,
        loadtest_sweeps=args.loadtest_sweeps,
        loadtest_requests=args.loadtest_requests,
        loadtest_concurrency=args.loadtest_concurrency,
        pipeline_workers=args.pipeline_workers,
        replicas=args.replicas,
        seed=args.seed,
        repeats=args.repeats,
    )
    rows = [
        [
            entry["kind"],
            entry["name"],
            str(entry["n"]),
            str(entry["sweeps"]),
            entry["backend"],
            format_seconds(entry["seconds"]),
            "-" if entry["sweeps_per_sec"] is None else f"{entry['sweeps_per_sec']:.0f}",
            f"{entry['quality']:.1f}",
        ]
        for entry in payload["entries"]
    ]
    print(ascii_table(
        ["kind", "name", "n", "sweeps", "backend", "wall", "sweeps/s", "quality"],
        rows,
        title=f"bench @ {payload['revision']} (best of {payload['repeats']})",
    ))
    if payload["speedups"]:
        rows = [
            [
                cell["kind"],
                cell["name"],
                str(cell["n"]),
                format_seconds(cell["reference_seconds"]),
                format_seconds(cell["fast_seconds"]),
                f"{cell['speedup']:.2f}x",
            ]
            for cell in payload["speedups"]
        ]
        print()
        print(ascii_table(
            ["kind", "name", "n", "reference", "fast", "speedup"],
            rows, title="fast-vs-reference speedups",
        ))
    if payload.get("pipeline_speedups"):
        rows = [
            [
                str(cell["n"]),
                str(cell["workers"]),
                format_seconds(cell["serial_seconds"]),
                format_seconds(cell["wavefront_seconds"]),
                f"{cell['speedup']:.2f}x",
                "yes" if cell["identical_quality"] else "NO",
            ]
            for cell in payload["pipeline_speedups"]
        ]
        print()
        print(ascii_table(
            ["n", "workers", "serial", "wavefront", "speedup", "bit-identical"],
            rows, title="pipeline serial-vs-wavefront dispatch",
        ))
    if payload.get("service_speedups"):
        rows = [
            [
                str(cell["n"]),
                format_seconds(cell["cold_seconds"]),
                format_seconds(cell["cached_seconds"]),
                f"{cell['speedup']:.0f}x" if cell["speedup"] else "-",
                f"{cell['requests_per_sec']:.0f}" if cell["requests_per_sec"] else "-",
            ]
            for cell in payload["service_speedups"]
        ]
        print()
        print(ascii_table(
            ["n", "cold solve", "cache hit", "hit speedup", "hit req/s"],
            rows, title="solve service cold-vs-cached",
        ))
    if payload.get("replica_batch_speedups"):
        rows = [
            [
                str(cell["n"]),
                str(cell["replicas"]),
                format_seconds(cell["sequential_seconds"]),
                format_seconds(cell["lockstep_seconds"]),
                f"{cell['speedup']:.2f}x",
                "yes" if cell["bit_identical"] else "NO",
            ]
            for cell in payload["replica_batch_speedups"]
        ]
        print()
        print(ascii_table(
            ["n", "replicas", "sequential", "lockstep", "speedup",
             "bit-identical"],
            rows, title="replica lock-step vs sequential dispatch",
        ))
    scale_cells = [e for e in payload["entries"] if e["kind"] == "scale"]
    if scale_cells:
        rows = [
            [
                str(cell["n"]),
                format_seconds(cell["seconds"]),
                f"{cell['peak_rss_bytes'] / 2**20:.0f} MiB",
                cell["tour_hash"],
            ]
            for cell in scale_cells
        ]
        print()
        print(ascii_table(
            ["n", "wall", "peak RSS", "tour hash"],
            rows, title="sparse-path scale ladder (single run per cell)",
        ))
    if payload.get("scale_curvature"):
        rows = [
            [
                f"{cell['n_from']} -> {cell['n_to']}",
                format_seconds(cell["seconds_from"]),
                format_seconds(cell["seconds_to"]),
                f"{cell['exponent']:.2f}",
            ]
            for cell in payload["scale_curvature"]
        ]
        print()
        print(ascii_table(
            ["sizes", "from", "to", "exponent"],
            rows, title="scale-ladder runtime curvature (1 = linear)",
        ))
    if payload.get("portfolio_curves"):
        rows = [
            [
                str(cell["n"]),
                f"{cell['deadline_seconds']:g}s",
                f"{cell['portfolio_quality']:.0f}",
                f"{cell['best_arm_quality']:.0f}",
                f"{cell['worst_arm_quality']:.0f}",
                cell["winner"],
                str(cell["arms_raced"]),
                "yes" if cell["beats_worst"] else "tie",
            ]
            for cell in payload["portfolio_curves"]
        ]
        print()
        print(ascii_table(
            ["n", "deadline", "portfolio", "best arm", "worst arm",
             "winner", "arms", "beats worst"],
            rows, title="portfolio quality vs deadline",
        ))
    loadtest_cells = [e for e in payload["entries"] if e["kind"] == "loadtest"]
    if loadtest_cells:
        rows = [
            [
                str(cell["n"]),
                str(cell["requests"]),
                str(cell["concurrency"]),
                _format_latency(cell["p50_seconds"]),
                _format_latency(cell["p99_seconds"]),
                f"{cell['requests_per_sec']:.1f}" if cell["requests_per_sec"] else "-",
                f"{cell['cache_hit_rate']:.2f}",
                f"{cell['mean_batch_size']:.2f}",
            ]
            for cell in loadtest_cells
        ]
        print()
        print(ascii_table(
            ["n", "requests", "conc", "p50", "p99", "req/s", "hit rate",
             "mean batch"],
            rows, title="loadgen closed-loop traffic",
        ))
    path = write_bench(payload, args.out)
    print(f"wrote {path}")
    return 0


def _format_latency(seconds) -> str:
    return "-" if seconds is None else format_seconds(seconds)


def cmd_loadtest(args: argparse.Namespace) -> int:
    from repro.core.config import LoadgenConfig
    from repro.engine.bench import loadtest_payload, write_bench
    from repro.service.loadgen import HTTPDriver, run_loadtest

    params: dict = {"sweeps": args.sweeps}
    for item in args.set:
        key, separator, value = item.partition("=")
        if not separator or not key:
            raise SystemExit(f"--set expects KEY=VALUE, got {item!r}")
        params[key] = _parse_value(value)
    if args.chaos and args.http:
        raise SystemExit(
            "--chaos drives an in-process service; to chaos-test over "
            "HTTP start the server with `repro serve --chaos-seed ...` "
            "and drop --chaos here"
        )
    if args.shards > 1 and args.http:
        raise SystemExit(
            "--shards spawns its own fleet; to drive an existing sharded "
            "server point --http at its router and drop --shards here"
        )
    config = LoadgenConfig(
        instances=tuple(args.instances),
        requests=args.requests,
        concurrency=args.concurrency,
        warm_ratio=args.warm_ratio,
        mode=args.mode,
        rate=args.rate,
        solver=args.solver,
        params=tuple(sorted(params.items())),
        seed=args.seed,
        shards=args.shards,
        timeout=args.timeout,
        deadline=args.deadline,
        max_retries=args.max_retries,
        chaos=args.chaos,
        chaos_seed=args.chaos_seed,
        chaos_kill_rate=args.chaos_kill_rate,
        chaos_slow_rate=args.chaos_slow_rate,
        chaos_slow_seconds=args.chaos_slow_seconds,
        chaos_transient_rate=args.chaos_transient_rate,
    )
    driver = HTTPDriver(args.http) if args.http else None
    report = run_loadtest(config, driver=driver, workers=args.workers)
    summary = report.summary()
    rows = []
    for label in ("overall", "cold", "warm"):
        cell = summary["latency"][label]
        rows.append([
            label,
            str(cell["count"]),
            _format_latency(cell["p50"]),
            _format_latency(cell["p95"]),
            _format_latency(cell["p99"]),
            _format_latency(cell["mean"]),
            _format_latency(cell["max"]),
        ])
    print(ascii_table(
        ["requests", "count", "p50", "p95", "p99", "mean", "max"],
        rows,
        title=f"loadtest: {summary['driver']} {summary['mode']}-loop "
              f"concurrency={summary['concurrency']} seed={summary['seed']}"
              + (f" shards={summary['shards']}"
                 if summary.get("shards", 1) > 1 else ""),
    ))
    rps = summary["requests_per_sec"]
    print(f"wall          : {format_seconds(summary['wall_seconds'])}")
    print(f"throughput    : {rps:.1f} req/s" if rps else "throughput    : -")
    print(f"completed     : {summary['completed']}/{summary['requests']} "
          f"({summary['errors']} errors)")
    print(f"cold / warm   : {summary['scheduled_cold']} / "
          f"{summary['scheduled_warm']} scheduled")
    print(f"cache         : {summary['cache_hits']} hits, "
          f"{summary['cache_misses']} misses "
          f"(hit rate {summary['cache_hit_rate']:.2f})")
    print(f"mean batch    : {summary['mean_batch_size']:.2f} requests/dispatch")
    print(f"schedule hash : {summary['schedule_digest'][:16]}")
    classes = summary["error_classes"]
    if summary["errors"] or summary["client_retries"]:
        print("error classes : " + ", ".join(
            f"{name}={classes[name]}" for name in sorted(classes)
        ) + f" (client retries {summary['client_retries']})")
    chaos = summary.get("chaos")
    if chaos:
        injected = chaos.get("injected") or {}
        print(f"chaos         : {chaos['injection']} schedule "
              f"{(chaos.get('schedule_digest') or '-')[:16]} "
              f"(kills {injected.get('kills_injected', 0)}, "
              f"slow {injected.get('slow_injected', 0)}, "
              f"transient {injected.get('transient_injected', 0)})")
    for sample in summary["error_samples"]:
        print(f"error sample  : {sample}")
    path = write_bench(loadtest_payload(report), args.out, prefix="LOADTEST")
    print(f"wrote {path}")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.config import ServiceConfig

    config = ServiceConfig(
        queue_depth=args.queue_depth,
        batch_window=args.batch_window,
        max_batch=args.max_batch,
        cache_size=args.cache_size,
        cache_path=args.cache_path,
        workers=args.workers,
        default_deadline=args.default_deadline,
        max_retries=args.max_retries,
        arena=args.arena,
        request_timeout=args.request_timeout,
    )
    fault_config = None
    if args.chaos_seed is not None:
        from repro.service.faults import FaultConfig

        fault_config = FaultConfig(
            seed=args.chaos_seed,
            kill_rate=args.chaos_kill_rate,
            slow_rate=args.chaos_slow_rate,
            slow_seconds=args.chaos_slow_seconds,
            transient_rate=args.chaos_transient_rate,
        )
    if args.shards > 1:
        from repro.service.shards import serve_sharded_forever

        serve_sharded_forever(args.shards, config, host=args.host,
                              port=args.port, verbose=args.verbose,
                              fault_config=fault_config)
        return 0
    from repro.service.faults import FaultInjector
    from repro.service.http import serve_forever

    fault_injector = (FaultInjector(fault_config)
                      if fault_config is not None else None)
    serve_forever(config, host=args.host, port=args.port,
                  verbose=args.verbose, fault_injector=fault_injector)
    return 0


def cmd_solvers(_args: argparse.Namespace) -> int:
    from repro.engine import get_solver, solver_names

    rows = []
    for name in solver_names():
        spec = get_solver(name)
        params = ", ".join(p for p in spec.accepted_params() if p != "seed")
        rows.append([
            name,
            "stochastic" if spec.stochastic else "deterministic",
            spec.description,
            params or "-",
        ])
    print(ascii_table(["name", "kind", "description", "extra params"], rows,
                      title="solver registry"))
    return 0


def _print_progress(event) -> None:
    print(event, file=sys.stderr, flush=True)


def cmd_table1(_args: argparse.Namespace) -> int:
    from repro.macro.circuit_sim import CircuitSimulator

    print(CircuitSimulator.format_table(CircuitSimulator().table_i()))
    return 0


def cmd_devices(_args: argparse.Namespace) -> int:
    from repro.devices import (
        DETERMINISTIC_MIN_CURRENT,
        STOCHASTIC_CURRENT_RANGE,
        SwitchingCharacteristic,
    )
    from repro.utils.units import MICRO

    ch = SwitchingCharacteristic.from_paper_anchors()
    rows = [
        [f"{ua} uA", f"{100 * ch.probability(ua * MICRO):.2f} %"]
        for ua in (300, 353, 380, 420, 500, 650)
    ]
    print(ascii_table(["I_write", "P_sw"], rows, title="SOT-MRAM switching"))
    low, high = STOCHASTIC_CURRENT_RANGE
    print(f"stochastic window : {low / MICRO:.0f}-{high / MICRO:.0f} uA")
    print(f"deterministic     : > {DETERMINISTIC_MIN_CURRENT / MICRO:.0f} uA")
    return 0


def cmd_bench_info(_args: argparse.Namespace) -> int:
    rows = []
    for size in BENCHMARK_SIZES:
        spec = benchmark_spec(size)
        rows.append([spec.name, size, spec.real_name, spec.family])
    print(ascii_table(["name", "size", "stands in for", "family"], rows,
                      title="benchmark registry (synthetic, seeded)"))
    return 0


_COMMANDS = {
    "solve": cmd_solve,
    "compare": cmd_compare,
    "batch": cmd_batch,
    "sweep": cmd_sweep,
    "scenarios": cmd_scenarios,
    "serve": cmd_serve,
    "loadtest": cmd_loadtest,
    "solvers": cmd_solvers,
    "bench": cmd_bench,
    "table1": cmd_table1,
    "devices": cmd_devices,
    "bench-info": cmd_bench_info,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


def script_main() -> None:  # pragma: no cover - thin console-script wrapper
    """Entry point for the installed ``repro`` command.

    Same behavior as ``python -m repro``: library errors are reported
    as one-line messages, not tracebacks.
    """
    from repro.errors import ReproError

    try:
        sys.exit(main())
    except BrokenPipeError:
        sys.exit(0)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        sys.exit(2)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
