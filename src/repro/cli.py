"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``     solve a benchmark size (or a TSPLIB file) with TAXI
``compare``   run TAXI against the comparator solvers on one instance
``table1``    print the Table I circuit-simulation reproduction
``devices``   print the SOT-MRAM switching operating points
``bench-info``  list the benchmark registry

Examples::

    python -m repro solve --size 1060 --bits 4 --sweeps 300
    python -m repro solve --tsplib path/to/instance.tsp
    python -m repro compare --size 318
    python -m repro table1
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import ascii_table, format_seconds
from repro.core import TAXIConfig, TAXISolver
from repro.tsp import load_benchmark, read_tsplib
from repro.tsp.benchmarks import BENCHMARK_SIZES, benchmark_spec


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TAXI (DAC 2025) reproduction command-line interface",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve one instance with TAXI")
    _instance_args(solve)
    solve.add_argument("--cluster-size", type=int, default=12,
                       help="maximum cluster size (macro capacity)")
    solve.add_argument("--bits", type=int, default=4, help="W_D bit precision")
    solve.add_argument("--sweeps", type=int, default=None,
                       help="annealing sweeps (default: full 1341-sweep ramp)")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--clustering", choices=("ward", "kmeans"), default="ward")
    solve.add_argument("--no-fixing", action="store_true",
                       help="disable inter-cluster endpoint fixing")
    solve.add_argument("--reference", action="store_true",
                       help="also compute the Concorde-surrogate reference")

    compare = sub.add_parser("compare", help="TAXI vs comparator solvers")
    _instance_args(compare)
    compare.add_argument("--sweeps", type=int, default=134)
    compare.add_argument("--seed", type=int, default=0)

    sub.add_parser("table1", help="print the Table I reproduction")
    sub.add_parser("devices", help="print SOT-MRAM operating points")
    sub.add_parser("bench-info", help="list the benchmark registry")
    return parser


def _instance_args(parser: argparse.ArgumentParser) -> None:
    group = parser.add_mutually_exclusive_group(required=False)
    group.add_argument("--size", type=int, help="benchmark registry size")
    group.add_argument("--tsplib", type=str, help="path to a TSPLIB file")


def _load_instance(args: argparse.Namespace):
    if getattr(args, "tsplib", None):
        return read_tsplib(args.tsplib)
    size = getattr(args, "size", None) or 318
    return load_benchmark(size)


def cmd_solve(args: argparse.Namespace) -> int:
    instance = _load_instance(args)
    config = TAXIConfig(
        max_cluster_size=args.cluster_size,
        bits=args.bits,
        sweeps=args.sweeps,
        seed=args.seed,
        clustering=args.clustering,
        endpoint_fixing=not args.no_fixing,
    )
    result = TAXISolver(config).solve(instance)
    print(f"instance      : {instance.name} ({instance.n} cities)")
    print(f"tour length   : {result.tour.length:.0f}")
    print(f"hierarchy     : {result.hierarchy_depth} levels, "
          f"{result.total_subproblems} sub-problems")
    for phase, seconds in result.phase_seconds.as_dict().items():
        print(f"  {phase:<10s}: {format_seconds(seconds)}")
    if args.reference:
        from repro.baselines import reference_length

        reference = reference_length(instance)
        print(f"reference     : {reference:.0f}")
        print(f"optimal ratio : {result.optimal_ratio(reference):.4f}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    from repro.baselines import (
        CIMASolver,
        HVCSolver,
        IMASolver,
        NeuroIsingSolver,
        reference_length,
    )

    instance = _load_instance(args)
    reference = reference_length(instance)
    rows = []
    taxi = TAXISolver(TAXIConfig(sweeps=args.sweeps, seed=args.seed)).solve(instance)
    rows.append(["TAXI", f"{taxi.tour.length:.0f}",
                 f"{taxi.tour.length / reference:.3f}"])
    for solver in (
        HVCSolver(sweeps=args.sweeps, seed=args.seed),
        IMASolver(sweeps=args.sweeps, seed=args.seed),
        CIMASolver(sweeps=args.sweeps, seed=args.seed),
        NeuroIsingSolver(sweeps=args.sweeps, seed=args.seed),
    ):
        result = solver.solve(instance)
        rows.append([solver.name, f"{result.tour.length:.0f}",
                     f"{result.tour.length / reference:.3f}"])
    print(ascii_table(["solver", "length", "ratio vs reference"], rows,
                      title=f"{instance.name} ({instance.n} cities)"))
    return 0


def cmd_table1(_args: argparse.Namespace) -> int:
    from repro.macro.circuit_sim import CircuitSimulator

    print(CircuitSimulator.format_table(CircuitSimulator().table_i()))
    return 0


def cmd_devices(_args: argparse.Namespace) -> int:
    from repro.devices import (
        DETERMINISTIC_MIN_CURRENT,
        STOCHASTIC_CURRENT_RANGE,
        SwitchingCharacteristic,
    )
    from repro.utils.units import MICRO

    ch = SwitchingCharacteristic.from_paper_anchors()
    rows = [
        [f"{ua} uA", f"{100 * ch.probability(ua * MICRO):.2f} %"]
        for ua in (300, 353, 380, 420, 500, 650)
    ]
    print(ascii_table(["I_write", "P_sw"], rows, title="SOT-MRAM switching"))
    low, high = STOCHASTIC_CURRENT_RANGE
    print(f"stochastic window : {low / MICRO:.0f}-{high / MICRO:.0f} uA")
    print(f"deterministic     : > {DETERMINISTIC_MIN_CURRENT / MICRO:.0f} uA")
    return 0


def cmd_bench_info(_args: argparse.Namespace) -> int:
    rows = []
    for size in BENCHMARK_SIZES:
        spec = benchmark_spec(size)
        rows.append([spec.name, size, spec.real_name, spec.family])
    print(ascii_table(["name", "size", "stands in for", "family"], rows,
                      title="benchmark registry (synthetic, seeded)"))
    return 0


_COMMANDS = {
    "solve": cmd_solve,
    "compare": cmd_compare,
    "table1": cmd_table1,
    "devices": cmd_devices,
    "bench-info": cmd_bench_info,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
