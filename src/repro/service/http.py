"""Stdlib HTTP front-end for the solve service (``repro serve``).

Endpoints (JSON in, JSON out; no dependencies beyond ``http.server``):

``POST /solve``
    Body: ``{"instance": "<token>"}`` (benchmark size/name, TSPLIB
    path, or ``family:n[:seed]`` generator spec) **or**
    ``{"coords": [[x, y], ...], "metric": "EUC_2D"}`` for an inline
    instance; optional ``"solver"`` (default ``taxi``), integer
    ``"seed"`` (default 0; ``null`` is rejected — cache keys must be
    deterministic), and ``"params"`` (canonical JSON scalars only).
    Returns the job view with its deterministic ``job_id``; repeated
    identical requests are answered from the result cache.

``GET /jobs/<id>``
    Job state; ``?wait=<seconds>`` blocks up to that long for
    completion before answering.

``GET /stats``
    Queue/cache/request counters.

``GET /healthz``
    Liveness: 200 whenever the process answers at all.

``GET /readyz``
    Readiness: 200 when new solves are accepted *now*; 503 (with a
    ``Retry-After`` header) while the dispatcher is down or the worker
    pool is degraded/respawning.

``GET /metrics``
    The full metric registry (counters, gauges, latency/batch-size
    histograms with p50/p95/p99).  JSON by default;
    ``?format=prometheus`` (or an ``Accept: text/plain`` header)
    returns the Prometheus text exposition instead.  Every counter
    here is the same instrument ``/stats`` and the loadgen summary
    report — the three views are cross-checkable number-for-number.

Error mapping: validation problems -> 400, unknown jobs/paths -> 404,
queue backpressure -> 429, degraded-mode shedding -> 503 with
``Retry-After``.  Every error body is a JSON object with an ``error``
key.
"""

from __future__ import annotations

import json
import math
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core.config import ServiceConfig
from repro.errors import ConfigError, ReproError, ServiceError, ShedError
from repro.service.queue import SolveRequest, SolveService

#: Request bodies beyond this are refused (inline coords for ~500k
#: cities still fit; anything bigger should arrive as a token).
MAX_BODY_BYTES = 32 * 1024 * 1024


def build_request(body: dict) -> SolveRequest:
    """Translate one ``POST /solve`` JSON body into a validated request.

    ``portfolio: true`` routes the request to the deadline-aware racing
    portfolio: the solver becomes ``"portfolio"`` and, when the body
    carries a ``deadline_seconds`` but no explicit ``budget_seconds``
    param, the deadline becomes the race's compute budget — a
    *fingerprinted* solver param, so identical (instance, deadline,
    seed) requests stay content-addressed and bit-reproducible while
    the operational deadline watchdog still applies.
    """
    if not isinstance(body, dict):
        raise ConfigError("request body must be a JSON object")
    token = body.get("instance")
    coords = body.get("coords")
    if (token is None) == (coords is None):
        raise ConfigError(
            "provide exactly one of 'instance' (token) or 'coords' (inline)"
        )
    if coords is not None:
        from repro.tsp.instance import EdgeWeightType, TSPInstance

        metric = EdgeWeightType.from_string(str(body.get("metric", "EUC_2D")))
        token = TSPInstance(str(body.get("name", "inline")), coords, metric)
    params = body.get("params") or {}
    if not isinstance(params, dict):
        raise ConfigError("'params' must be a JSON object")
    solver = str(body.get("solver", "taxi"))
    deadline = body.get("deadline_seconds")
    if body.get("portfolio"):
        if "solver" in body and solver != "portfolio":
            raise ConfigError(
                f"'portfolio': true conflicts with solver {solver!r}"
            )
        solver = "portfolio"
        if deadline is not None and "budget_seconds" not in params:
            params = dict(params, budget_seconds=float(deadline))
    return SolveRequest.create(
        token,
        solver=solver,
        params=params,
        seed=body.get("seed", 0),
        deadline_seconds=deadline,
    )


#: Upper clamp on ``?wait=`` long-polls (seconds).
MAX_WAIT_SECONDS = 300.0


def parse_wait(raw: str) -> float:
    """Validate one ``?wait=`` value; returns the clamped timeout.

    Rejects non-numbers, negatives, and NaN (NaN silently defeated the
    old ``min(float(raw), 300.0)`` clamp because every comparison with
    NaN is false, handing the poisoned value straight to
    ``Event.wait``).  ``inf`` is a well-ordered number and simply
    clamps to the maximum.
    """
    try:
        timeout = float(raw)
    except (ValueError, TypeError):
        raise ConfigError(f"bad wait value {raw!r}") from None
    if math.isnan(timeout):
        raise ConfigError("bad wait value: NaN is not a timeout")
    if timeout < 0:
        raise ConfigError(f"bad wait value {raw!r}: must be >= 0")
    return min(timeout, MAX_WAIT_SECONDS)


class ServiceHandler(BaseHTTPRequestHandler):
    """One request handler bound to the server's :class:`SolveService`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    #: Per-connection socket timeout; ``setup()`` (stdlib) applies it
    #: via ``connection.settimeout`` and ``handle_one_request`` treats
    #: a timed-out read as end-of-connection, so a stalled or half-open
    #: client releases its handler thread instead of pinning it.
    timeout = 30.0

    def setup(self) -> None:
        self.timeout = getattr(self.server, "request_timeout", type(self).timeout)
        super().setup()

    @property
    def service(self) -> SolveService:
        return self.server.service  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        if urlparse(self.path).path != "/solve":
            self._send(404, {"error": f"unknown endpoint {self.path!r}"})
            return
        try:
            body = self._read_json()
            request = build_request(body)
            job = self.service.submit(request)
        except ShedError as exc:
            self._send(503, {"error": str(exc)},
                       {"Retry-After": f"{exc.retry_after:g}"})
            return
        except ServiceError as exc:
            self._send(429, {"error": str(exc)})
            return
        except ReproError as exc:
            self._send(400, {"error": str(exc)})
            return
        except (ValueError, TypeError) as exc:
            # e.g. jagged/non-numeric inline coords: numpy raises before
            # the library's own validation can; still a caller error.
            self._send(400, {"error": f"invalid request: {exc}"})
            return
        self._send(200, job.as_dict())

    def do_GET(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        if parsed.path == "/stats":
            self._send(200, self.service.stats())
            return
        if parsed.path == "/healthz":
            self._send(200, self.service.health())
            return
        if parsed.path == "/readyz":
            ready, info = self.service.ready()
            if ready:
                self._send(200, info)
            else:
                self._send(503, info, {
                    "Retry-After": f"{self.service.config.shed_retry_after:g}"
                })
            return
        if parsed.path == "/metrics":
            query = parse_qs(parsed.query)
            fmt = (query.get("format") or [""])[0].lower()
            accept = self.headers.get("Accept", "")
            if fmt in ("prometheus", "prom", "text") or (
                not fmt and "text/plain" in accept
            ):
                self._send_text(200, self.service.metrics.render_prometheus())
            else:
                self._send(200, self.service.metrics.snapshot())
            return
        if parsed.path.startswith("/jobs/"):
            job_id = parsed.path[len("/jobs/"):]
            job = self.service.job(job_id)
            if job is None:
                self._send(404, {"error": f"unknown job {job_id!r}"})
                return
            wait = parse_qs(parsed.query).get("wait")
            if wait:
                try:
                    timeout = parse_wait(wait[0])
                except ConfigError as exc:
                    self._send(400, {"error": str(exc)})
                    return
                if job.status in ("queued", "running"):
                    job.done_event.wait(timeout)
            self._send(200, job.as_dict())
            return
        self._send(404, {"error": f"unknown endpoint {parsed.path!r}"})

    # ------------------------------------------------------------------
    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ConfigError("empty request body; POST a JSON object")
        if length > MAX_BODY_BYTES:
            raise ConfigError(f"request body exceeds {MAX_BODY_BYTES} bytes")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ConfigError(f"request body is not valid JSON: {exc}") from exc

    def _send(self, status: int, payload: dict,
              headers: dict | None = None) -> None:
        self._send_bytes(status, json.dumps(payload).encode(),
                         "application/json", headers)

    def _send_text(self, status: int, text: str) -> None:
        self._send_bytes(status, text.encode(),
                         "text/plain; version=0.0.4; charset=utf-8")

    def _send_bytes(self, status: int, data: bytes, content_type: str,
                    headers: dict | None = None) -> None:
        self.service.metrics.http_response(status)
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, fmt: str, *args) -> None:
        if getattr(self.server, "verbose", False):  # type: ignore[attr-defined]
            super().log_message(fmt, *args)


def make_server(
    config: ServiceConfig | None = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = False,
    fault_injector=None,
) -> tuple[ThreadingHTTPServer, SolveService]:
    """Build (but do not start) the HTTP server + its solve service.

    The caller owns the lifecycle: ``service.start()``, then
    ``server.serve_forever()``; shut down with ``server.shutdown()``
    followed by ``service.close()`` (which persists the cache).
    ``fault_injector`` (a :class:`~repro.service.faults.FaultInjector`)
    enables server-side chaos injection behind ``repro serve
    --chaos-seed``.
    """
    service = SolveService(config, fault_injector=fault_injector)
    server = ThreadingHTTPServer((host, port), ServiceHandler)
    server.service = service  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.request_timeout = service.config.request_timeout  # type: ignore[attr-defined]
    return server, service


def serve_forever(
    config: ServiceConfig | None = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = False,
    fault_injector=None,
) -> None:
    """Blocking entry point behind ``repro serve``."""
    server, service = make_server(config, host, port, verbose, fault_injector)
    service.start()
    # SIGTERM (systemd/docker/CI `kill`) must unwind through the
    # finally below: the graceful drain solves the jobs already
    # admitted and persists --cache-path before the process exits.
    import signal

    def _sigterm(_signum, _frame):
        raise SystemExit(0)

    try:
        signal.signal(signal.SIGTERM, _sigterm)
    except ValueError:  # not the main thread (tests drive make_server)
        pass
    bound = server.server_address
    print(f"repro serve: listening on http://{bound[0]}:{bound[1]} "
          f"(workers={service.config.workers}, "
          f"cache={service.config.cache_size})", flush=True)
    if fault_injector is not None:
        print(f"repro serve: CHAOS ENABLED (seed "
              f"{fault_injector.config.seed}, schedule "
              f"{fault_injector.schedule_digest()[:16]})", flush=True)
    try:
        server.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        server.server_close()
        print("repro serve: draining in-flight jobs...", flush=True)
        service.stop(drain=True)
        print("repro serve: drained; bye", flush=True)
