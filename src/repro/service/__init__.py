"""Solve-as-a-service: content-addressed caching + micro-batched queue.

The serving layer on top of the batch engine (PR 1), the vectorized
kernels (PR 2), and the wavefront pipeline (PR 3):

* :mod:`repro.service.fingerprint` — canonical, deterministic solve
  fingerprints (instance bytes + solver + canonical config + seed);
* :mod:`repro.service.cache` — LRU result cache with JSON persistence
  and hit/miss/eviction counters;
* :mod:`repro.service.queue` — asyncio dispatcher with in-flight
  deduplication and micro-batching over the engine's wavefront pool;
* :mod:`repro.service.http` — the stdlib HTTP front-end behind
  ``repro serve`` (``/solve``, ``/jobs``, ``/stats``, ``/metrics``);
* :mod:`repro.service.metrics` — lock-safe counters/gauges/streaming
  histograms behind ``GET /metrics`` (JSON + Prometheus text);
* :mod:`repro.service.loadgen` — the seeded closed/open-loop load
  generator behind ``repro loadtest``.

Quickstart::

    from repro.core.config import ServiceConfig
    from repro.service import SolveRequest, SolveService

    with SolveService(ServiceConfig(workers=2)) as service:
        request = SolveRequest.create(262, solver="taxi",
                                      params={"sweeps": 60}, seed=0)
        job = service.solve(request)        # cold: runs the engine
        again = service.submit(request)     # hit: served from cache
        assert again.result["tour_hash"] == job.result["tour_hash"]
"""

from repro.service.cache import ResultCache
from repro.service.faults import FaultConfig, FaultInjector
from repro.service.fingerprint import (
    canonical_params,
    canonical_seed,
    instance_digest,
    solve_fingerprint,
)
from repro.service.loadgen import (
    HTTPDriver,
    InProcessDriver,
    LoadtestReport,
    build_schedule,
    run_loadtest,
    schedule_digest,
)
from repro.service.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ServiceMetrics,
)
from repro.service.queue import Job, SolveRequest, SolveService, job_id_for

__all__ = [
    "ResultCache",
    "FaultConfig",
    "FaultInjector",
    "canonical_params",
    "canonical_seed",
    "instance_digest",
    "solve_fingerprint",
    "Job",
    "SolveRequest",
    "SolveService",
    "job_id_for",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ServiceMetrics",
    "HTTPDriver",
    "InProcessDriver",
    "LoadtestReport",
    "build_schedule",
    "run_loadtest",
    "schedule_digest",
]
