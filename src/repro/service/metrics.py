"""Lock-safe serving metrics: counters, gauges, streaming histograms.

The observability side of the solve service.  Every instrument is
independently lock-protected (an increment never contends with the
service's own job-table lock), cheap enough to sit on the hot path
(a counter bump is one lock + one add), and snapshot-able at any time
without stopping traffic:

* :class:`Counter` — monotonically increasing event counts (requests,
  cache hits, dispatched batches);
* :class:`Gauge` — instantaneous values (queue depth, pool width);
* :class:`Histogram` — streaming distribution sketches over fixed
  bucket ladders, with percentile estimation by intra-bucket linear
  interpolation (p50/p95/p99 without storing per-event samples, so a
  soak run's memory stays O(buckets) however long it runs);
* :class:`MetricsRegistry` — the named collection behind ``GET
  /metrics``, rendered as a JSON snapshot or Prometheus text
  exposition (``name_bucket{le="..."}`` cumulative form).

:class:`ServiceMetrics` wires the registry into the solve service's
well-known instrument set; the same counters feed ``GET /stats``,
``GET /metrics``, and the loadgen run summary, so the three views can
be cross-checked number-for-number.
"""

from __future__ import annotations

import bisect
import math
import threading

from repro.errors import ConfigError


def latency_bounds() -> tuple[float, ...]:
    """Quarter-decade log ladder from 1 microsecond to 100 seconds.

    Wide enough for both 40-microsecond cache hits and multi-second
    cold hierarchical solves; 33 buckets keeps percentile error under
    ~30% of the bucket width anywhere on the ladder.
    """
    return tuple(10.0 ** (exponent / 4.0) for exponent in range(-24, 9))


def batch_size_bounds() -> tuple[float, ...]:
    """Bucket ladder for dispatch batch sizes (1 .. max_batch-scale)."""
    return (1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 48.0, 64.0)


class Counter:
    """A monotonically increasing, thread-safe event counter."""

    def __init__(self, name: str, help: str = "", labels: dict | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ConfigError(f"counter {self.name!r} cannot decrease ({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """An instantaneous, thread-safe value (queue depth, pool width)."""

    def __init__(self, name: str, help: str = "", labels: dict | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """A streaming histogram over a fixed, sorted bucket ladder.

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything beyond the last edge.  Percentiles interpolate linearly
    inside the winning bucket and clamp to the exact observed min/max,
    so single-observation and overflow cases stay sane.
    """

    def __init__(self, name: str, help: str = "",
                 bounds: tuple[float, ...] | None = None,
                 labels: dict | None = None):
        self.name = name
        self.help = help
        self.labels = dict(labels or {})
        self.bounds = tuple(sorted(bounds if bounds is not None else latency_bounds()))
        if not self.bounds:
            raise ConfigError(f"histogram {self.name!r} needs at least one bound")
        self._counts = [0] * (len(self.bounds) + 1)  # + overflow
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        with self._lock:
            return sum(self._counts)

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float | None:
        """Estimated ``q``-quantile (``q`` in (0, 1]); ``None`` when empty."""
        if not 0.0 < q <= 1.0:
            raise ConfigError(f"percentile must be in (0, 1], got {q}")
        with self._lock:
            return self._percentile_locked(q)

    def _percentile_locked(self, q: float) -> float | None:
        total = sum(self._counts)
        if total == 0:
            return None
        rank = q * total
        cumulative = 0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            cumulative += bucket_count
            if cumulative < rank:
                continue
            lower = self.bounds[index - 1] if index > 0 else 0.0
            upper = self.bounds[index] if index < len(self.bounds) else math.inf
            # Interpolate inside the *effective* bucket: the observed
            # max tightens the top occupied bucket's upper edge and the
            # observed min the bottom occupied bucket's lower edge (for
            # interior buckets both clamps are no-ops).  Without this,
            # any quantile landing in the top occupied bucket would
            # estimate past the max and clamp straight to it — which is
            # how p95 == p99 == max tail collapse happened.
            upper = min(upper, self._max)
            lower = min(max(lower, self._min), upper)
            fraction = (rank - (cumulative - bucket_count)) / bucket_count
            estimate = lower + fraction * (upper - lower)
            return float(min(max(estimate, self._min), self._max))
        return float(self._max)  # pragma: no cover - loop always returns

    def snapshot(self) -> dict:
        """JSON-safe summary: count/sum/mean/min/max and key percentiles."""
        with self._lock:
            total = sum(self._counts)
            if total == 0:
                return {"count": 0, "sum": 0.0, "mean": None, "min": None,
                        "max": None, "p50": None, "p90": None, "p95": None,
                        "p99": None}
            return {
                "count": total,
                "sum": self._sum,
                "mean": self._sum / total,
                "min": self._min,
                "max": self._max,
                "p50": self._percentile_locked(0.50),
                "p90": self._percentile_locked(0.90),
                "p95": self._percentile_locked(0.95),
                "p99": self._percentile_locked(0.99),
            }

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """(upper_edge, cumulative_count) pairs, ending with +Inf."""
        return self.exposition()[0]

    def exposition(self) -> tuple[list[tuple[float, int]], float, int]:
        """(cumulative buckets, sum, count) from ONE locked snapshot.

        Prometheus rejects a scrape whose ``_count`` disagrees with its
        ``+Inf`` bucket, so the three series must never be read across
        separate lock acquisitions with observes landing in between.
        """
        with self._lock:
            pairs = []
            cumulative = 0
            for bound, bucket_count in zip(self.bounds, self._counts):
                cumulative += bucket_count
                pairs.append((bound, cumulative))
            total = cumulative + self._counts[-1]
            pairs.append((math.inf, total))
            return pairs, self._sum, total


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{key}="{value}"' for key, value in sorted(labels.items()))
    return "{" + inner + "}"


def _merge_labels(base: str, extra: str) -> str:
    """Merge two ``{k="v"}`` fragments into one label set."""
    if not base:
        return extra
    if not extra:
        return base
    return base[:-1] + "," + extra[1:]


class MetricsRegistry:
    """A named, ordered collection of instruments.

    ``counter``/``gauge``/``histogram`` are create-or-get: asking for
    the same (name, labels) twice returns the same instrument, so the
    service and the HTTP layer can share counters without plumbing
    object references through every call site.
    """

    def __init__(self) -> None:
        self._metrics: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, key: tuple, factory, kind: type):
        with self._lock:
            existing = self._metrics.get(key)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise ConfigError(
                        f"metric {key[0]!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            metric = factory()
            self._metrics[key] = metric
            return metric

    @staticmethod
    def _key(name: str, labels: dict | None) -> tuple:
        return (name, tuple(sorted((labels or {}).items())))

    def counter(self, name: str, help: str = "",
                labels: dict | None = None) -> Counter:
        return self._get_or_create(
            self._key(name, labels), lambda: Counter(name, help, labels), Counter
        )

    def gauge(self, name: str, help: str = "",
              labels: dict | None = None) -> Gauge:
        return self._get_or_create(
            self._key(name, labels), lambda: Gauge(name, help, labels), Gauge
        )

    def histogram(self, name: str, help: str = "",
                  bounds: tuple[float, ...] | None = None,
                  labels: dict | None = None) -> Histogram:
        return self._get_or_create(
            self._key(name, labels),
            lambda: Histogram(name, help, bounds, labels), Histogram,
        )

    def _items(self) -> list:
        with self._lock:
            return list(self._metrics.values())

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON view: scalars for counters/gauges, dicts for histograms.

        Labeled families collapse to ``{label_value: value}`` maps (one
        label per family is the supported shape).
        """
        out: dict = {}
        for metric in self._items():
            if isinstance(metric, Histogram):
                value: object = metric.snapshot()
            else:
                value = metric.value
            if metric.labels:
                family = out.setdefault(metric.name, {})
                label_value = ",".join(
                    str(v) for _, v in sorted(metric.labels.items())
                )
                family[label_value] = value
            else:
                out[metric.name] = value
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition (version 0.0.4)."""
        lines: list[str] = []
        seen_headers: set[str] = set()
        for metric in self._items():
            labels = _format_labels(metric.labels)
            if metric.name not in seen_headers:
                seen_headers.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                kind = {Counter: "counter", Gauge: "gauge",
                        Histogram: "histogram"}[type(metric)]
                lines.append(f"# TYPE {metric.name} {kind}")
            if isinstance(metric, Histogram):
                pairs, total_sum, total_count = metric.exposition()
                for bound, cumulative in pairs:
                    edge = "+Inf" if math.isinf(bound) else repr(bound)
                    bucket_labels = _merge_labels(labels, f'{{le="{edge}"}}')
                    lines.append(
                        f"{metric.name}_bucket{bucket_labels} {cumulative}"
                    )
                lines.append(f"{metric.name}_sum{labels} {total_sum}")
                lines.append(f"{metric.name}_count{labels} {total_count}")
            else:
                lines.append(f"{metric.name}{labels} {metric.value}")
        return "\n".join(lines) + "\n"


class ServiceMetrics:
    """The solve service's well-known instrument set.

    One instance per :class:`~repro.service.queue.SolveService`; the
    queue, the result cache, and the HTTP front-end all write into it,
    and ``GET /stats``, ``GET /metrics``, and the loadgen summary all
    read from it — one ledger, three views.
    """

    def __init__(self) -> None:
        self.registry = MetricsRegistry()
        registry = self.registry
        self.requests = registry.counter(
            "repro_requests_total", "Solve requests admitted")
        self.deduplicated = registry.counter(
            "repro_requests_deduplicated_total",
            "Requests coalesced onto an identical in-flight fingerprint")
        self.served_from_cache = registry.counter(
            "repro_requests_cached_total",
            "Requests answered from the result cache")
        self.completed = registry.counter(
            "repro_requests_completed_total", "Requests solved successfully")
        self.failed = registry.counter(
            "repro_requests_failed_total", "Requests that failed in the engine")
        self.batches = registry.counter(
            "repro_batches_total", "Engine dispatch groups run")
        self.batched_requests = registry.counter(
            "repro_batched_requests_total",
            "Requests carried by dispatch groups")
        self.windows = registry.counter(
            "repro_dispatch_windows_total",
            "Batching windows drained by the dispatcher")
        self.cache_hits = registry.counter(
            "repro_cache_hits_total", "Result-cache lookup hits")
        self.cache_misses = registry.counter(
            "repro_cache_misses_total", "Result-cache lookup misses")
        self.cache_evictions = registry.counter(
            "repro_cache_evictions_total", "Result-cache LRU evictions")
        self.cache_load_errors = registry.counter(
            "repro_cache_load_errors_total",
            "Corrupt/foreign cache persistence files quarantined at load")
        self.retries = registry.counter(
            "repro_retries_total",
            "Engine task retries (crash replays + transient re-runs)")
        self.deadline_expired = registry.counter(
            "repro_deadline_expired_total",
            "Requests failed because their deadline expired")
        self.pool_respawns = registry.counter(
            "repro_pool_respawns_total",
            "Worker-pool executors respawned after breakage")
        self.shed = registry.counter(
            "repro_shed_total",
            "Requests shed (503) while the pool was degraded")
        self.partial_group_failures = registry.counter(
            "repro_partial_group_failures_total",
            "Dispatch groups where some-but-not-all tasks failed")
        self.portfolio_arms = registry.counter(
            "repro_portfolio_arms_total",
            "Arms raced (launched) by portfolio solves")
        self.warm_starts = registry.counter(
            "repro_warm_starts_total",
            "Solves seeded from a near-match cached tour")
        self.degraded = registry.gauge(
            "repro_degraded",
            "1 while the worker pool is broken/respawning, else 0")
        self.degraded_seconds = registry.gauge(
            "repro_degraded_seconds_total",
            "Cumulative seconds spent in degraded mode")
        self.queue_pending = registry.gauge(
            "repro_queue_pending", "Requests admitted but not yet solved")
        self.arena_publishes = registry.counter(
            "repro_arena_publishes_total",
            "Dispatches that shipped an arena-backed instance ref")
        self.arena_instances = registry.gauge(
            "repro_arena_instances",
            "Instances resident in the shared-memory arena")
        self.arena_bytes = registry.gauge(
            "repro_arena_bytes",
            "Bytes of shared-memory blocks owned by the arena")
        self.queue_depth_limit = registry.gauge(
            "repro_queue_depth_limit", "Backpressure threshold")
        self.batch_size = registry.histogram(
            "repro_batch_size",
            "Requests coalesced per batching window (pre-grouping occupancy)",
            bounds=batch_size_bounds())
        self.solve_latency = registry.histogram(
            "repro_solve_latency_seconds",
            "Submit-to-finish latency of engine-solved requests")
        self.cache_hit_latency = registry.histogram(
            "repro_cache_hit_latency_seconds",
            "Admission latency of cache-served requests")

    def http_response(self, status: int) -> None:
        """Count one HTTP response by status code (labeled family)."""
        self.registry.counter(
            "repro_http_responses_total", "HTTP responses by status code",
            labels={"status": str(int(status))},
        ).inc()

    def portfolio_win(self, arm_label: str) -> None:
        """Count one portfolio win by arm (labeled family).

        Arm labels are intentionally low-cardinality: solver name plus
        the sweep rung and ladder index (e.g. ``sa_tsp-s400@2``).
        """
        self.registry.counter(
            "repro_portfolio_wins_total", "Portfolio race wins by arm",
            labels={"arm": str(arm_label)},
        ).inc()

    def snapshot(self) -> dict:
        return self.registry.snapshot()

    def render_prometheus(self) -> str:
        return self.registry.render_prometheus()
