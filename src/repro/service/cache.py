"""Content-addressed LRU result cache with optional JSON persistence.

The serving analogue of the host-side
:class:`~repro.clustering.cache.SubmatrixCache` (PR 3): where that
cache reuses distance slices *within* a solve, this one reuses whole
solve results *across* requests.  Keys are the canonical fingerprints
of :mod:`repro.service.fingerprint`, so a hit is guaranteed to be
bit-identical to re-running the solve.

Values are plain JSON-safe dicts (tour order as a list, lengths and
timings as floats), which makes the on-disk format trivially
inspectable and diffable.  The cache stores and returns **deep
copies**: a caller mutating a dict it got from (or gave to) the cache
can never poison the stored entry — the same shared-mutable-state
defect this PR fixes in ``SubmatrixCache``, enforced here by isolation
rather than by read-only flags.  Hit/miss/eviction counters are
first-class: the service surfaces them through ``GET /stats`` and the
bench's ``service`` grid reads them to report hit rates.
"""

from __future__ import annotations

import copy
import json
import logging
import os
import tempfile
import threading
from collections import OrderedDict

from repro.errors import ConfigError

logger = logging.getLogger(__name__)

#: On-disk schema tag; files with another tag are ignored at load so a
#: stale cache can never serve results from an incompatible recipe.
CACHE_SCHEMA = "repro-result-cache/1"


class ResultCache:
    """Thread-safe in-memory LRU of solve results, keyed by fingerprint.

    ``metrics`` (a :class:`~repro.service.metrics.ServiceMetrics`, or
    anything exposing ``cache_hits``/``cache_misses``/``cache_evictions``
    counters) mirrors the cache's own ledger into the service's metric
    registry, so ``GET /metrics`` reports the same numbers ``stats()``
    does; both are updated under the cache lock.
    """

    def __init__(self, capacity: int = 256, path: str | None = None,
                 metrics=None) -> None:
        if capacity < 1:
            raise ConfigError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.path = path
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.load_errors = 0
        self._metrics = metrics
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()
        if path is not None and os.path.exists(path):
            self.load(path)

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> dict | None:
        """A deep copy of the cached result, or ``None``; hits refresh recency."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                if self._metrics is not None:
                    self._metrics.cache_misses.inc()
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            if self._metrics is not None:
                self._metrics.cache_hits.inc()
            return copy.deepcopy(entry)

    def put(self, fingerprint: str, value: dict) -> None:
        """Insert (or refresh) one result, evicting LRU entries beyond capacity."""
        with self._lock:
            self._entries[fingerprint] = copy.deepcopy(value)
            self._entries.move_to_end(fingerprint)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
                if self._metrics is not None:
                    self._metrics.cache_evictions.inc()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot (what ``GET /stats`` and the bench report)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "load_errors": self.load_errors,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }

    # ------------------------------------------------------------------
    def save(self, path: str | None = None) -> str:
        """Write the cache as JSON (atomic rename); returns the path."""
        target = path if path is not None else self.path
        if target is None:
            raise ConfigError("no cache path configured; pass one to save()")
        with self._lock:
            payload = {
                "schema": CACHE_SCHEMA,
                "entries": list(self._entries.items()),
            }
        parent = os.path.dirname(os.path.abspath(target))
        os.makedirs(parent, exist_ok=True)
        handle, tmp = tempfile.mkstemp(dir=parent, suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(payload, stream)
            os.replace(tmp, target)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return target

    def load(self, path: str) -> int:
        """Merge entries persisted by :meth:`save`; returns entries loaded.

        Unreadable/foreign files never block serving (a cache is an
        optimization), but they are no longer silent: each one bumps
        ``load_errors`` (mirrored to ``repro_cache_load_errors_total``),
        logs a one-line warning, and is quarantined to
        ``<path>.corrupt`` so the evidence survives the next
        :meth:`save` instead of being overwritten.
        """
        try:
            with open(path) as stream:
                payload = json.load(stream)
        except FileNotFoundError:
            return 0
        except (OSError, ValueError) as exc:
            self._quarantine(path, f"unreadable: {exc}")
            return 0
        if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA:
            tag = payload.get("schema") if isinstance(payload, dict) else None
            self._quarantine(path, f"unknown schema {tag!r}")
            return 0
        entries = payload.get("entries", [])
        loaded = 0
        with self._lock:
            for item in entries:
                if not (isinstance(item, list) and len(item) == 2):
                    continue
                fingerprint, value = item
                if isinstance(fingerprint, str) and isinstance(value, dict):
                    self._entries[fingerprint] = value
                    loaded += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return loaded

    def _quarantine(self, path: str, reason: str) -> None:
        """Count, warn about, and sideline one bad persistence file."""
        with self._lock:
            self.load_errors += 1
            if self._metrics is not None:
                self._metrics.cache_load_errors.inc()
        target: str | None = path + ".corrupt"
        try:
            os.replace(path, target)
        except OSError:
            target = None
        logger.warning(
            "result cache file %s ignored (%s)%s", path, reason,
            f"; quarantined to {target}" if target else "",
        )
