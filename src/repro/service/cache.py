"""Content-addressed LRU result cache with optional JSON persistence.

The serving analogue of the host-side
:class:`~repro.clustering.cache.SubmatrixCache` (PR 3): where that
cache reuses distance slices *within* a solve, this one reuses whole
solve results *across* requests.  Keys are the canonical fingerprints
of :mod:`repro.service.fingerprint`, so a hit is guaranteed to be
bit-identical to re-running the solve.

Values are plain JSON-safe dicts (tour order as a list, lengths and
timings as floats), which makes the on-disk format trivially
inspectable and diffable.  The cache stores and returns **deep
copies**: a caller mutating a dict it got from (or gave to) the cache
can never poison the stored entry — the same shared-mutable-state
defect this PR fixes in ``SubmatrixCache``, enforced here by isolation
rather than by read-only flags.  Hit/miss/eviction counters are
first-class: the service surfaces them through ``GET /stats`` and the
bench's ``service`` grid reads them to report hit rates.
"""

from __future__ import annotations

import copy
import json
import logging
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

logger = logging.getLogger(__name__)

#: On-disk schema tag; files with another tag are ignored at load so a
#: stale cache can never serve results from an incompatible recipe.
CACHE_SCHEMA = "repro-result-cache/1"

#: Side length of the occupancy grid behind the near-match signature.
SIGNATURE_GRID = 8


@dataclass(frozen=True)
class InstanceSignature:
    """Small locality signature of an instance's coordinate cloud.

    The signature is an ``8x8`` occupancy histogram of the coordinates
    after centering (translation invariance) and normalizing by the
    centered bounding box (scale invariance — a tour permutation is
    itself invariant under both).  Two signatures are comparable only
    when ``n`` and ``metric`` match exactly: a cached tour is only a
    valid warm start for an instance with the same city count.
    """

    n: int
    metric: str
    grid: tuple[float, ...]

    def similarity(self, other: "InstanceSignature") -> float:
        """Histogram overlap in ``[0, 1]``; ``1.0`` only for identical grids.

        Defined as ``1 - L1/2`` over the normalized occupancy vectors,
        which is symmetric and maximal at self-similarity.  Signatures
        for different ``n`` or ``metric`` never match (similarity 0).
        """
        if self.n != other.n or self.metric != other.metric:
            return 0.0
        a = np.asarray(self.grid)
        b = np.asarray(other.grid)
        return float(max(0.0, 1.0 - 0.5 * np.abs(a - b).sum()))


def instance_signature(instance) -> InstanceSignature | None:
    """Locality signature for a coordinate instance, else ``None``.

    Explicit-matrix instances have no coordinate cloud to compare, so
    they never participate in the near-match warm-start tier.
    """
    coords = getattr(instance, "coords", None)
    if coords is None:
        return None
    coords = np.asarray(coords, dtype=float)
    if coords.ndim != 2 or coords.shape[0] == 0:
        return None
    centered = coords - coords.mean(axis=0)
    lo = centered.min(axis=0)
    span = centered.max(axis=0) - lo
    # Degenerate axes (all points colinear/identical) collapse to cell 0.
    span = np.where(span > 0, span, 1.0)
    cells = np.clip(
        ((centered - lo) / span * SIGNATURE_GRID).astype(int),
        0, SIGNATURE_GRID - 1,
    )
    flat = cells[:, 0] * SIGNATURE_GRID + (cells[:, 1] if coords.shape[1] > 1
                                           else 0)
    counts = np.bincount(flat, minlength=SIGNATURE_GRID * SIGNATURE_GRID)
    grid = counts / counts.sum()
    return InstanceSignature(
        n=int(coords.shape[0]),
        metric=str(getattr(instance, "metric", "euclidean")),
        grid=tuple(float(v) for v in grid),
    )


class ResultCache:
    """Thread-safe in-memory LRU of solve results, keyed by fingerprint.

    ``metrics`` (a :class:`~repro.service.metrics.ServiceMetrics`, or
    anything exposing ``cache_hits``/``cache_misses``/``cache_evictions``
    counters) mirrors the cache's own ledger into the service's metric
    registry, so ``GET /metrics`` reports the same numbers ``stats()``
    does; both are updated under the cache lock.
    """

    def __init__(self, capacity: int = 256, path: str | None = None,
                 metrics=None) -> None:
        if capacity < 1:
            raise ConfigError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.path = path
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.load_errors = 0
        self._metrics = metrics
        self._entries: OrderedDict[str, dict] = OrderedDict()
        self._signatures: dict[str, InstanceSignature] = {}
        self._lock = threading.Lock()
        if path is not None and os.path.exists(path):
            self.load(path)

    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> dict | None:
        """A deep copy of the cached result, or ``None``; hits refresh recency."""
        with self._lock:
            entry = self._entries.get(fingerprint)
            if entry is None:
                self.misses += 1
                if self._metrics is not None:
                    self._metrics.cache_misses.inc()
                return None
            self._entries.move_to_end(fingerprint)
            self.hits += 1
            if self._metrics is not None:
                self._metrics.cache_hits.inc()
            return copy.deepcopy(entry)

    def put(self, fingerprint: str, value: dict,
            signature: InstanceSignature | None = None) -> None:
        """Insert (or refresh) one result, evicting LRU entries beyond capacity.

        ``signature`` (optional) registers the entry with the near-match
        warm-start tier; it lives only in memory (signatures are cheaply
        recomputable, so :meth:`load` does not restore them).
        """
        with self._lock:
            self._entries[fingerprint] = copy.deepcopy(value)
            self._entries.move_to_end(fingerprint)
            if signature is not None:
                self._signatures[fingerprint] = signature
            while len(self._entries) > self.capacity:
                evicted, _ = self._entries.popitem(last=False)
                self._signatures.pop(evicted, None)
                self.evictions += 1
                if self._metrics is not None:
                    self._metrics.cache_evictions.inc()

    def find_similar(self, signature: InstanceSignature | None,
                     threshold: float = 0.9) -> tuple[str, dict] | None:
        """Best near-match ``(fingerprint, result)`` at or above ``threshold``.

        Used on a fingerprint *miss* to seed annealing from the tour of a
        geometrically similar instance.  The scan is deterministic: the
        highest similarity wins, ties broken by fingerprint ordering, so
        a given cache state always yields the same warm-start source.
        Does not count as a cache hit and does not refresh recency — the
        returned tour is a hint, not the requested result.
        """
        if signature is None:
            return None
        with self._lock:
            best: tuple[float, str] | None = None
            for fingerprint, candidate in self._signatures.items():
                score = signature.similarity(candidate)
                if score < threshold:
                    continue
                if best is None or (score, fingerprint) > best:
                    best = (score, fingerprint)
            if best is None:
                return None
            entry = self._entries.get(best[1])
            if entry is None:
                return None
            return best[1], copy.deepcopy(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._signatures.clear()

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Counter snapshot (what ``GET /stats`` and the bench report)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "load_errors": self.load_errors,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }

    # ------------------------------------------------------------------
    def save(self, path: str | None = None) -> str:
        """Write the cache as JSON (atomic rename); returns the path.

        The lock is held only for an O(entries) pointer snapshot —
        **never** during JSON serialization or disk I/O, so a drain-time
        save of a large cache cannot stall concurrent ``get``/``put``.
        The shallow snapshot is safe to serialize lock-free because
        stored values are immutable by construction: ``put`` stores a
        private deep copy and ``get`` hands out deep copies, so no
        caller can mutate a dict the snapshot references.
        """
        target = path if path is not None else self.path
        if target is None:
            raise ConfigError("no cache path configured; pass one to save()")
        snapshot = self._snapshot()
        return self._write_payload(snapshot, target)

    def _snapshot(self) -> dict:
        """Serializable payload referencing the live entries (lock held briefly)."""
        with self._lock:
            return {
                "schema": CACHE_SCHEMA,
                "entries": list(self._entries.items()),
            }

    @staticmethod
    def _write_payload(payload: dict, target: str) -> str:
        """Serialize + atomic-rename, entirely outside the cache lock."""
        parent = os.path.dirname(os.path.abspath(target))
        os.makedirs(parent, exist_ok=True)
        handle, tmp = tempfile.mkstemp(dir=parent, suffix=".tmp")
        try:
            with os.fdopen(handle, "w") as stream:
                json.dump(payload, stream)
            os.replace(tmp, target)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return target

    def load(self, path: str) -> int:
        """Merge entries persisted by :meth:`save`; returns entries loaded.

        Unreadable/foreign files never block serving (a cache is an
        optimization), but they are no longer silent: each one bumps
        ``load_errors`` (mirrored to ``repro_cache_load_errors_total``),
        logs a one-line warning, and is quarantined to
        ``<path>.corrupt`` so the evidence survives the next
        :meth:`save` instead of being overwritten.
        """
        try:
            with open(path) as stream:
                payload = json.load(stream)
        except FileNotFoundError:
            return 0
        except (OSError, ValueError) as exc:
            self._quarantine(path, f"unreadable: {exc}")
            return 0
        if not isinstance(payload, dict) or payload.get("schema") != CACHE_SCHEMA:
            tag = payload.get("schema") if isinstance(payload, dict) else None
            self._quarantine(path, f"unknown schema {tag!r}")
            return 0
        entries = payload.get("entries", [])
        loaded = 0
        with self._lock:
            for item in entries:
                if not (isinstance(item, list) and len(item) == 2):
                    continue
                fingerprint, value = item
                if isinstance(fingerprint, str) and isinstance(value, dict):
                    self._entries[fingerprint] = value
                    loaded += 1
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
        return loaded

    def _quarantine(self, path: str, reason: str) -> None:
        """Count, warn about, and sideline one bad persistence file."""
        with self._lock:
            self.load_errors += 1
            if self._metrics is not None:
                self._metrics.cache_load_errors.inc()
        target: str | None = path + ".corrupt"
        try:
            os.replace(path, target)
        except OSError:
            target = None
        logger.warning(
            "result cache file %s ignored (%s)%s", path, reason,
            f"; quarantined to {target}" if target else "",
        )
