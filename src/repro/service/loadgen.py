"""Seeded closed/open-loop load generator for the solve service.

``repro loadtest`` turns "a single curl" into reproducible traffic:
a schedule of requests — instance tokens, per-request seeds, a
cold/warm cache mix, optional Poisson arrival times — is derived
entirely from one master seed, then driven at a configurable
concurrency against a :class:`~repro.service.queue.SolveService`
either **in-process** (:class:`InProcessDriver`, no sockets — measures
the service itself) or **over HTTP** (:class:`HTTPDriver`, against a
running ``repro serve`` — measures the whole stack).

Determinism contract
--------------------
Two runs with the same :class:`~repro.core.config.LoadgenConfig`
produce the identical request schedule (assert via
:func:`schedule_digest`) *and* identical cache hit/miss totals.  The
second half is the subtle one: under concurrency, whether a repeated
fingerprint lands as a cache hit, an in-flight dedup, or a second
solve would normally depend on thread timing.  The loadgen removes the
race by construction:

* every **cold** request carries a unique derived seed, so cold
  fingerprints never collide (each misses exactly once);
* every **warm** request names the cold request it repeats and *gates
  on that request's completion* before issuing, so it is always a
  cache hit (never a dedup, never a second solve).

The ledger is therefore decided by the schedule: ``misses == cold
count``, ``hits == warm count``, run after run.  (Warm gating can
delay an open-loop arrival slightly; the recorded latency starts at
actual issue time, so the percentiles stay honest.)

The client-side latency distribution is sketched with the same
streaming :class:`~repro.service.metrics.Histogram` the service uses,
so a million-request soak costs O(buckets) memory, and the run summary
reports the same counters ``GET /metrics`` serves — cross-checkable
number-for-number.
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
import time
import urllib.error
import urllib.request
from dataclasses import dataclass

import numpy as np

from repro.core.config import LoadgenConfig, ServiceConfig
from repro.errors import ConfigError, DeadlineError, ReproError, ShedError
from repro.service.faults import FaultConfig, FaultInjector
from repro.service.metrics import Histogram
from repro.service.queue import SolveRequest, SolveService

#: Multiplier deriving unique per-cold-request seeds from (run seed,
#: slot index); any odd constant works, primes keep collisions at bay
#: even across run seeds.
_COLD_SEED_STRIDE = 1_000_003

#: Stable error-class vocabulary of the per-record/summary accounting.
ERROR_CLASSES = ("shed", "timeout", "deadline", "error")


def classify_error(error: BaseException) -> str:
    """Map one request failure onto the summary's error-class ledger."""
    if isinstance(error, ShedError):
        return "shed"
    if isinstance(error, DeadlineError):
        return "deadline"
    text = str(error).lower()
    if (
        isinstance(error, TimeoutError)
        or "timed out" in text
        or "did not finish within" in text
    ):
        return "timeout"
    return "error"


def _check_done(view: dict) -> dict:
    """Raise the class-appropriate error for a non-done job view."""
    if view["status"] == "done":
        return view
    message = view.get("error") or f"job ended {view['status']!r}"
    if view["status"] == "expired":
        raise DeadlineError(message)
    raise ReproError(message)


@dataclass(frozen=True)
class PlannedRequest:
    """One slot of the precomputed request schedule.

    ``kind`` is ``"cold"`` (fresh fingerprint, unique seed) or
    ``"warm"`` (repeats the fingerprint of the cold request at index
    ``ref``).  ``arrival`` is the seconds offset from run start at
    which an open-loop run releases the request (0.0 in closed loop).
    """

    index: int
    token: str
    solver: str
    params: tuple[tuple[str, object], ...]
    seed: int
    kind: str
    ref: int = -1
    arrival: float = 0.0
    deadline: float | None = None

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "token": self.token,
            "solver": self.solver,
            "params": dict(self.params),
            "seed": self.seed,
            "kind": self.kind,
            "ref": self.ref,
            "arrival": self.arrival,
            "deadline": self.deadline,
        }


def expand_instances(tokens) -> tuple[str, ...]:
    """Expand ``scenario:<name>`` entries into that scenario's tokens.

    Lets a load test draw its request mix straight from the named
    workload scenarios (:mod:`repro.tsp.scenarios`) — e.g.
    ``--instances scenario:paper-small`` — alongside ordinary engine
    tokens.  Unknown scenario names raise :class:`ConfigError`.
    """
    expanded: list[str] = []
    for token in tokens:
        text = str(token)
        if text.startswith("scenario:"):
            from repro.tsp.scenarios import get_scenario

            expanded.extend(get_scenario(text[len("scenario:"):]).tokens)
        else:
            expanded.append(text)
    return tuple(expanded)


def build_schedule(config: LoadgenConfig) -> tuple[PlannedRequest, ...]:
    """Derive the full request schedule from the config seed.

    Pure function of the config: tokens, cold seeds, warm references,
    and arrival offsets all come from one :class:`numpy.random
    .Generator` stream, so equal configs always yield equal schedules.
    """
    instances = expand_instances(config.instances)
    rng = np.random.default_rng(config.seed)
    planned: list[PlannedRequest] = []
    cold_indices: list[int] = []
    clock = 0.0
    for index in range(config.requests):
        arrival = 0.0
        if config.mode == "open":
            clock += float(rng.exponential(1.0 / config.rate))
            arrival = clock
        # The first request is always cold (nothing to repeat yet).
        warm = bool(cold_indices) and float(rng.random()) < config.warm_ratio
        if warm:
            ref = cold_indices[int(rng.integers(len(cold_indices)))]
            base = planned[ref]
            planned.append(PlannedRequest(
                index=index, token=base.token, solver=base.solver,
                params=base.params, seed=base.seed, kind="warm", ref=ref,
                arrival=arrival, deadline=config.deadline,
            ))
        else:
            token = instances[int(rng.integers(len(instances)))]
            planned.append(PlannedRequest(
                index=index, token=token, solver=config.solver,
                params=config.params,
                seed=config.seed * _COLD_SEED_STRIDE + index, kind="cold",
                arrival=arrival, deadline=config.deadline,
            ))
            cold_indices.append(index)
    return tuple(planned)


def schedule_digest(schedule: tuple[PlannedRequest, ...]) -> str:
    """Content hash of a schedule (equal digests == identical traffic)."""
    payload = json.dumps([p.as_dict() for p in schedule], sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


# ----------------------------------------------------------------------
# drivers
# ----------------------------------------------------------------------

class InProcessDriver:
    """Drives a started :class:`SolveService` directly (no sockets)."""

    name = "in-process"

    def __init__(self, service: SolveService) -> None:
        self.service = service

    def solve(self, planned: PlannedRequest, timeout: float) -> dict:
        request = SolveRequest.create(
            planned.token, solver=planned.solver,
            params=dict(planned.params), seed=planned.seed,
            deadline_seconds=planned.deadline,
        )
        job = self.service.solve(request, timeout=timeout)
        return _check_done(job.as_dict())

    def stats(self) -> dict:
        return self.service.stats()

    def metrics(self) -> dict:
        return self.service.metrics.snapshot()


class HTTPDriver:
    """Drives a running ``repro serve`` endpoint over HTTP."""

    name = "http"

    def __init__(self, base_url: str) -> None:
        self.base_url = base_url.rstrip("/")
        if not self.base_url.startswith(("http://", "https://")):
            raise ConfigError(
                f"HTTP driver needs an http(s):// base URL, got {base_url!r}"
            )

    def _call(self, path: str, body: dict | None = None,
              timeout: float = 60.0, base: str | None = None) -> dict:
        data = json.dumps(body).encode() if body is not None else None
        request = urllib.request.Request(
            (base or self.base_url) + path, data=data,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return json.load(response)
        except urllib.error.HTTPError as exc:
            detail = ""
            try:
                detail = json.load(exc).get("error", "")
            except Exception:
                pass
            message = f"HTTP {exc.code} on {path}: {detail or exc.reason}"
            if exc.code in (429, 503):
                # Shed/backpressure: retryable, with the server's own
                # Retry-After hint when it sent one.
                try:
                    retry_after = float(exc.headers.get("Retry-After", 0.5))
                except (TypeError, ValueError):
                    retry_after = 0.5
                raise ShedError(message, retry_after=retry_after) from exc
            raise ReproError(message) from exc

    def solve(self, planned: PlannedRequest, timeout: float) -> dict:
        body = {
            "instance": planned.token,
            "solver": planned.solver,
            "seed": planned.seed,
            "params": dict(planned.params),
        }
        if planned.deadline is not None:
            body["deadline_seconds"] = planned.deadline
        view = self._call("/solve", body, timeout=timeout)
        if view["status"] in ("queued", "running"):
            view = self._call(
                f"/jobs/{view['job_id']}?wait={timeout:g}",
                timeout=timeout + 10.0,
            )
        return _check_done(view)

    def stats(self) -> dict:
        return self._call("/stats")

    def metrics(self) -> dict:
        return self._call("/metrics")


class ShardedHTTPDriver(HTTPDriver):
    """Drives a :class:`~repro.service.shards.ShardedService` fleet.

    Routes client-side: each planned request is fingerprinted locally
    and POSTed straight to the owning shard's own HTTP port (the same
    ``shard_for`` the router uses, so the two paths are bit-identical),
    skipping the router hop to measure the sharded data plane itself.
    Stats/metrics come from the fleet aggregators — counters summed
    across shards into the single-service ledger shape, so the report
    delta accounting works unchanged.
    """

    name = "sharded-http"

    def __init__(self, fleet) -> None:
        self.fleet = fleet
        self.base_url = fleet.shard_url(0)

    def _shard_base(self, planned: PlannedRequest) -> str:
        from repro.service.shards import shard_for

        request = SolveRequest.create(
            planned.token, solver=planned.solver,
            params=dict(planned.params), seed=planned.seed,
            deadline_seconds=planned.deadline,
        )
        return self.fleet.shard_url(
            shard_for(request.fingerprint(), self.fleet.shards)
        )

    def solve(self, planned: PlannedRequest, timeout: float) -> dict:
        base = self._shard_base(planned)
        body = {
            "instance": planned.token,
            "solver": planned.solver,
            "seed": planned.seed,
            "params": dict(planned.params),
        }
        if planned.deadline is not None:
            body["deadline_seconds"] = planned.deadline
        view = self._call("/solve", body, timeout=timeout, base=base)
        if view["status"] in ("queued", "running"):
            view = self._call(
                f"/jobs/{view['job_id']}?wait={timeout:g}",
                timeout=timeout + 10.0, base=base,
            )
        return _check_done(view)

    def stats(self) -> dict:
        return self.fleet.stats()

    def metrics(self) -> dict:
        return self.fleet.metrics_snapshot()


# ----------------------------------------------------------------------
# the run loop
# ----------------------------------------------------------------------

@dataclass
class RequestRecord:
    """Client-side outcome of one scheduled request.

    ``lag`` is issue time minus scheduled arrival (open loop only;
    exactly 0.0 in closed loop, which has no arrival schedule to lag
    behind) — nonzero lag means the generator itself, not the service,
    delayed the request.
    ``retries`` counts shed responses the client retried before this
    outcome; ``seconds`` spans the whole attempt sequence, backoffs
    included, so shed-then-served requests report their honest cost.
    ``error_class`` buckets failures per :data:`ERROR_CLASSES`.
    """

    index: int
    kind: str
    token: str
    seconds: float
    cached: bool = False
    lag: float = 0.0
    error: str | None = None
    error_class: str | None = None
    retries: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None


def _counter_delta(after: dict, before: dict) -> dict:
    """Per-key difference of two counter snapshots (numeric keys only)."""
    delta = {}
    for key, value in after.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            delta[key] = value - before.get(key, 0)
        else:
            delta[key] = value
    return delta


class LoadtestReport:
    """Everything one load-test run measured, queryable or summarized.

    Server-side counters are reported as the **delta** between the
    post-run and pre-run snapshots, so a run against a long-lived
    ``repro serve`` describes this run's traffic, not the server's
    lifetime totals.
    """

    def __init__(self, config: LoadgenConfig,
                 schedule: tuple[PlannedRequest, ...],
                 records: list[RequestRecord], wall_seconds: float,
                 stats: dict, metrics: dict, driver_name: str,
                 stats_before: dict | None = None,
                 fault_injector: FaultInjector | None = None) -> None:
        self.config = config
        self.schedule = schedule
        self.records = records
        self.wall_seconds = wall_seconds
        self.stats = stats
        self.stats_before = stats_before or {}
        self.metrics = metrics
        self.driver_name = driver_name
        self.fault_injector = fault_injector

    def _chaos_summary(self) -> dict | None:
        """The summary's chaos block (None when chaos was off).

        In-process runs report their own injector; HTTP runs against a
        ``repro serve --chaos-seed`` server read the server's schedule
        digest + injection counters from ``GET /stats``.
        """
        if self.fault_injector is not None:
            return {
                "injection": "in-process",
                "seed": self.fault_injector.config.seed,
                "schedule_digest": self.fault_injector.schedule_digest(),
                "injected": self.fault_injector.stats(),
            }
        health = self.stats.get("health") or {}
        if health.get("chaos_schedule"):
            return {
                "injection": "server-side",
                "seed": None,
                "schedule_digest": health.get("chaos_schedule"),
                "injected": health.get("chaos_injected"),
            }
        return None

    def _latency(self, kind: str | None = None) -> dict:
        histogram = Histogram("latency")
        for record in self.records:
            if record.ok and (kind is None or record.kind == kind):
                histogram.observe(record.seconds)
        return histogram.snapshot()

    def summary(self) -> dict:
        """The run-summary payload (what ``repro loadtest`` writes)."""
        completed = sum(1 for r in self.records if r.ok)
        errors = [r for r in self.records if not r.ok]
        overall = self._latency()
        requests = _counter_delta(
            self.stats.get("requests", {}),
            self.stats_before.get("requests", {}),
        )
        cache = _counter_delta(
            self.stats.get("cache", {}), self.stats_before.get("cache", {})
        )
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        cache["hit_rate"] = cache.get("hits", 0) / lookups if lookups else 0.0
        windows = requests.get("windows", 0)
        batched = requests.get("batched_requests", 0)
        return {
            "driver": self.driver_name,
            "mode": self.config.mode,
            "seed": self.config.seed,
            "instances": list(self.config.instances),
            "solver": self.config.solver,
            "params": self.config.params_dict(),
            "concurrency": self.config.concurrency,
            "shards": self.config.shards,
            "requests": len(self.records),
            "completed": completed,
            "errors": len(errors),
            "error_classes": {
                name: sum(1 for e in errors if e.error_class == name)
                for name in ERROR_CLASSES
            },
            "client_retries": sum(r.retries for r in self.records if r),
            "error_samples": [e.error for e in errors[:5]],
            "scheduled_cold": sum(1 for p in self.schedule if p.kind == "cold"),
            "scheduled_warm": sum(1 for p in self.schedule if p.kind == "warm"),
            "schedule_digest": schedule_digest(self.schedule),
            "wall_seconds": self.wall_seconds,
            "requests_per_sec": (
                completed / self.wall_seconds if self.wall_seconds > 0 else None
            ),
            # Worst generator-side delay behind the arrival schedule:
            # a large value means the probe under-drove the requested
            # rate — read the percentiles accordingly.  Closed-loop
            # runs have no arrival schedule, so the key reports None
            # there (a number would imply a measurement that does not
            # exist; it used to leak issue-clock deltas).
            "max_arrival_lag_seconds": (
                max((r.lag for r in self.records if r is not None),
                    default=0.0)
                if self.config.mode == "open" else None
            ),
            "p50_seconds": overall["p50"],
            "p95_seconds": overall["p95"],
            "p99_seconds": overall["p99"],
            "mean_seconds": overall["mean"],
            "max_seconds": overall["max"],
            "latency": {
                "overall": overall,
                "cold": self._latency("cold"),
                "warm": self._latency("warm"),
            },
            "cache_hits": cache.get("hits", 0),
            "cache_misses": cache.get("misses", 0),
            "cache_hit_rate": cache.get("hit_rate", 0.0),
            # Requests per *window*, not per post-grouping dispatch: the
            # dispatcher splits a window by (solver, params, seed), and
            # cold traffic carries unique seeds, so per-group averages
            # would sit at 1.0 regardless of coalescing.
            "mean_batch_size": (batched / windows) if windows else 0.0,
            "server_requests": requests,
            "chaos": self._chaos_summary(),
        }


def run_loadtest(
    config: LoadgenConfig,
    driver=None,
    service_config: ServiceConfig | None = None,
    workers: int = 1,
) -> LoadtestReport:
    """Run one load test and return its report.

    Without a ``driver`` an in-process :class:`SolveService` is created
    (and closed) for the run, sized so the run itself can never trip
    backpressure or evict its own warm targets: ``queue_depth`` covers
    the concurrency and ``cache_size`` covers every cold fingerprint
    (``workers`` sets that service's pool width).  With
    ``config.shards > 1`` the run instead spawns a
    :class:`~repro.service.shards.ShardedService` fleet and drives it
    through :class:`ShardedHTTPDriver` (client-side fingerprint
    routing, one HTTP port per shard).  Pass :class:`HTTPDriver` (or a
    pre-built :class:`InProcessDriver`) to measure an existing service
    instead.

    Closed loop: ``config.concurrency`` worker threads each issue
    their next request when the previous completes (in-flight ceiling
    = concurrency).  Open loop: every request is issued on its *own*
    thread at its scheduled arrival time, so arrivals never wait for
    completions — the in-flight count floats, which is the whole point
    of a saturation probe.  Each record carries its ``lag`` (issue
    time minus scheduled arrival); the summary reports the worst lag
    so an under-driven run is visible instead of silent.
    """
    schedule = build_schedule(config)
    own_service: SolveService | None = None
    own_fleet = None
    fault_injector: FaultInjector | None = None
    fault_config: FaultConfig | None = None
    if config.chaos and driver is None:
        fault_config = FaultConfig(
            seed=(config.chaos_seed if config.chaos_seed is not None
                  else config.seed),
            kill_rate=config.chaos_kill_rate,
            slow_rate=config.chaos_slow_rate,
            slow_seconds=config.chaos_slow_seconds,
            transient_rate=config.chaos_transient_rate,
        )
    if driver is None:
        if service_config is None:
            service_config = ServiceConfig(
                workers=workers,
                queue_depth=max(64, 2 * config.concurrency),
                cache_size=max(256, config.requests),
            )
        if config.shards > 1:
            # Sharded run: spawn a fleet of shard processes for the
            # duration and route to them client-side.  Chaos (if any)
            # is injected server-side inside each shard, exactly as
            # `repro serve --shards N --chaos-seed` would.
            from repro.service.shards import ShardedService

            own_fleet = ShardedService(
                config.shards, service_config, fault_config=fault_config
            ).start()
            driver = ShardedHTTPDriver(own_fleet)
        else:
            if fault_config is not None:
                fault_injector = FaultInjector(fault_config)
            own_service = SolveService(
                service_config, fault_injector=fault_injector
            ).start()
            driver = InProcessDriver(own_service)

    records: list[RequestRecord] = [None] * len(schedule)  # type: ignore[list-item]
    done_events = [threading.Event() for _ in schedule]
    # Counter snapshot before any traffic: the summary ledger is the
    # delta, so driving a long-lived server doesn't fold its previous
    # lifetime totals into this run's numbers.
    stats_before = driver.stats()
    start = time.perf_counter()

    def issue(slot: int) -> None:
        planned = schedule[slot]
        if planned.kind == "warm":
            # Gate on the referenced cold solve: the hit/miss ledger
            # is decided by the schedule, not by thread timing.
            done_events[planned.ref].wait(config.timeout)
        issued = time.perf_counter()
        # Lag is only meaningful against an arrival schedule; closed
        # loop has none (issue time is "whenever the worker freed up"
        # by design, not a delay).
        lag = (max(0.0, (issued - start) - planned.arrival)
               if config.mode == "open" else 0.0)
        attempts = 0
        try:
            while True:
                try:
                    view = driver.solve(planned, config.timeout)
                    records[slot] = RequestRecord(
                        index=slot, kind=planned.kind, token=planned.token,
                        seconds=time.perf_counter() - issued,
                        cached=bool(view.get("cached")), lag=lag,
                        retries=attempts,
                    )
                except ShedError as exc:
                    # Degraded-mode shedding is advisory, not terminal:
                    # back off by the server's hint and re-issue, up to
                    # the client retry budget.
                    if attempts < config.max_retries:
                        attempts += 1
                        time.sleep(max(0.0, exc.retry_after))
                        continue
                    records[slot] = RequestRecord(
                        index=slot, kind=planned.kind, token=planned.token,
                        seconds=time.perf_counter() - issued, lag=lag,
                        error=f"{type(exc).__name__}: {exc}",
                        error_class="shed", retries=attempts,
                    )
                except Exception as exc:  # record and keep driving: a
                    # load test must survive individual request failures
                    # (backpressure 429s, socket timeouts) to measure
                    # them.
                    records[slot] = RequestRecord(
                        index=slot, kind=planned.kind, token=planned.token,
                        seconds=time.perf_counter() - issued, lag=lag,
                        error=f"{type(exc).__name__}: {exc}",
                        error_class=classify_error(exc), retries=attempts,
                    )
                break
        finally:
            done_events[slot].set()

    def closed_loop() -> list[threading.Thread]:
        next_slot = {"index": 0}
        slot_lock = threading.Lock()

        def worker() -> None:
            while True:
                with slot_lock:
                    slot = next_slot["index"]
                    if slot >= len(schedule):
                        return
                    next_slot["index"] = slot + 1
                issue(slot)

        return [
            threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
            for i in range(config.concurrency)
        ]

    release = threading.Event()

    def open_loop() -> list[threading.Thread]:
        # Bounded issuing pool.  The previous design pre-spawned one
        # parked thread per request, which collapses around
        # --requests 5000 (a thread stack per scheduled arrival).  Now
        # one scheduler thread walks the arrival schedule in order —
        # enqueueing a slot is O(1), so thread spawn cost can no longer
        # accumulate into the schedule and under-drive fast rates —
        # and `open_loop_threads` pooled issuers drain the queue.
        # Arrivals beyond the pool's instantaneous capacity wait their
        # turn; `issue` stamps lag at actual issue time, so
        # max_arrival_lag_seconds stays honest about that queueing.
        arrivals: queue.Queue = queue.Queue()
        pool_width = min(len(schedule), config.open_loop_threads)

        def scheduler() -> None:
            release.wait()
            for slot in range(len(schedule)):
                delay = (start + schedule[slot].arrival) - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                arrivals.put(slot)
            # Sentinels only after every slot completed: a warm slot
            # rotated to the back of the queue (below) must never land
            # behind an issuer-stopping sentinel.
            for event in done_events:
                event.wait(config.timeout)
            for _ in range(pool_width):
                arrivals.put(None)

        def issuer() -> None:
            while True:
                slot = arrivals.get()
                if slot is None:
                    return
                planned = schedule[slot]
                if (planned.kind == "warm"
                        and not done_events[planned.ref].is_set()
                        and not arrivals.empty()):
                    # Don't park a bounded issuer on a warm gate while
                    # due arrivals queue behind it: grant the gate a
                    # short grace, then rotate the slot to the back.
                    if not done_events[planned.ref].wait(0.01):
                        arrivals.put(slot)
                        continue
                issue(slot)

        threads = [
            threading.Thread(target=issuer, name=f"loadgen-issuer-{i}",
                             daemon=True)
            for i in range(pool_width)
        ]
        threads.append(threading.Thread(
            target=scheduler, name="loadgen-scheduler", daemon=True))
        return threads

    try:
        if config.mode == "open":
            threads = open_loop()
            for thread in threads:
                thread.start()
            # Every thread exists and is parked before t=0.
            start = time.perf_counter()
            release.set()
            for thread in threads:
                thread.join()
        else:
            threads = closed_loop()
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        wall = time.perf_counter() - start
        stats = driver.stats()
        metrics = driver.metrics()
    finally:
        if own_service is not None:
            own_service.close()
        if own_fleet is not None:
            own_fleet.close()
    return LoadtestReport(
        config=config, schedule=schedule, records=records,
        wall_seconds=wall, stats=stats, metrics=metrics,
        driver_name=driver.name, stats_before=stats_before,
        fault_injector=fault_injector,
    )
