"""Solve-as-a-service: asyncio job queue with micro-batching.

:class:`SolveService` turns the one-shot solve path into a long-lived
serving process:

* **admission** — a :class:`SolveRequest` is fingerprinted
  (:mod:`repro.service.fingerprint`); cache hits complete immediately,
  identical in-flight fingerprints deduplicate onto one job, and a
  full queue refuses with :class:`~repro.errors.ServiceError`
  (backpressure, never unbounded memory);
* **micro-batching** — an asyncio dispatcher collects requests for up
  to ``batch_window`` seconds, groups compatible ones (same solver /
  params / seed), and runs each group as one engine job
  (:func:`repro.engine.runner.run_tasks`) over the service's shared
  :class:`~repro.engine.wavefront.WavefrontPool`;
* **determinism** — every request carries an explicit integer seed
  that the engine task uses *directly* (no replica-seed derivation),
  so a service solve is bit-identical to ``repro solve`` with the same
  instance/config/seed, and job IDs are derived from the fingerprint
  (re-submitting an identical request always names the same job).

The event loop runs on a dedicated daemon thread; ``submit``/``job``/
``stats`` are thread-safe and callable from any number of HTTP handler
threads.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field

from repro.core.config import ServiceConfig
from repro.engine.jobs import InstanceSpec, spec_from_token
from repro.engine.runner import ReplicaTask, run_tasks
from repro.engine.wavefront import WavefrontPool
from repro.errors import ReproError, ServiceError
from repro.service.cache import ResultCache
from repro.service.fingerprint import (
    canonical_params,
    canonical_seed,
    solve_fingerprint,
)
from repro.service.metrics import ServiceMetrics
from repro.utils.hashing import tour_hash

#: Job-id prefix + fingerprint digits: deterministic, short, greppable.
_JOB_ID_DIGITS = 16

#: Dispatcher shutdown sentinel.
_STOP = object()


@dataclass(frozen=True)
class SolveRequest:
    """One admitted, validated solve request.

    Build through :meth:`create`, which canonicalizes the parameter set
    and seed at the boundary — a constructed request is always
    fingerprintable.
    """

    spec: InstanceSpec
    solver: str = "taxi"
    params: tuple[tuple[str, object], ...] = ()
    seed: int = 0

    @classmethod
    def create(
        cls,
        instance,
        solver: str = "taxi",
        params: dict | None = None,
        seed: object = 0,
    ) -> "SolveRequest":
        """Validate and canonicalize one request from loose inputs.

        ``instance`` accepts everything ``repro batch`` does (benchmark
        size/name, TSPLIB path, ``family:n[:seed]`` token) plus an
        inline :class:`~repro.tsp.instance.TSPInstance`.
        """
        return cls(
            spec=spec_from_token(instance),
            solver=solver,
            params=canonical_params(params),
            seed=canonical_seed(seed),
        )

    def fingerprint(self) -> str:
        """Content-addressed key (resolves the instance to hash its bytes)."""
        return solve_fingerprint(
            self.spec.resolve(), self.solver, dict(self.params), self.seed
        )

    def group_key(self) -> tuple:
        """Requests sharing this key may ride one micro-batched engine job."""
        return (self.solver, self.params, self.seed)


@dataclass
class Job:
    """One tracked solve job (shared by every duplicate submission)."""

    id: str
    fingerprint: str
    request: SolveRequest
    status: str = "queued"  # queued | running | done | failed
    cached: bool = False
    result: dict | None = None
    error: str | None = None
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    done_event: threading.Event = field(default_factory=threading.Event, repr=False)

    def finish(self, result: dict | None, error: str | None = None) -> None:
        self.result = result
        self.error = error
        self.status = "failed" if error is not None else "done"
        self.finished_at = time.time()
        self.done_event.set()

    def as_dict(self) -> dict:
        """JSON-safe view (what ``GET /jobs/<id>`` returns)."""
        return {
            "job_id": self.id,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "cached": self.cached,
            "solver": self.request.solver,
            "instance": self.request.spec.label,
            "seed": self.request.seed,
            "params": dict(self.request.params),
            "result": self.result,
            "error": self.error,
        }


def job_id_for(fingerprint: str) -> str:
    """Deterministic job id: same request content -> same id, always."""
    return f"job-{fingerprint[:_JOB_ID_DIGITS]}"


class SolveService:
    """The serving facade: cache + queue + dispatcher + worker pool."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        # The metrics ledger is the single source of truth for every
        # counter: stats(), GET /metrics, and the loadgen summary all
        # read the same instruments (no parallel bookkeeping to drift).
        self.metrics = ServiceMetrics()
        self.metrics.queue_depth_limit.set(self.config.queue_depth)
        self.cache = ResultCache(
            self.config.cache_size, self.config.cache_path,
            metrics=self.metrics,
        )
        self.pool = WavefrontPool(workers=self.config.workers)
        self.started_at = time.time()
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._pending = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue | None = None
        self._thread: threading.Thread | None = None
        self._stopping = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SolveService":
        """Start the dispatcher loop on a daemon thread (idempotent)."""
        if self._thread is not None:
            return self
        ready = threading.Event()

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            self._queue = asyncio.Queue()
            ready.set()
            try:
                loop.run_until_complete(self._dispatch())
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-service-dispatch", daemon=True
        )
        self._thread.start()
        ready.wait()
        return self

    def close(self) -> None:
        """Drain-free shutdown: stop the dispatcher, pool, persist the cache.

        Jobs admitted before the close are still processed (the stop
        sentinel queues behind them); the lock hand-off with
        :meth:`submit` guarantees no job is enqueued after the
        sentinel, so nothing can be left 'queued' forever.
        """
        with self._lock:
            thread, loop, queue = self._thread, self._loop, self._queue
            self._stopping = True
        if thread is not None:
            assert loop is not None and queue is not None
            loop.call_soon_threadsafe(queue.put_nowait, _STOP)
            thread.join(timeout=30)
            with self._lock:
                self._thread = None
                self._loop = None
                self._queue = None
        self.pool.close()
        if self.config.cache_path is not None:
            self.cache.save()

    def __enter__(self) -> "SolveService":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(self, request: SolveRequest) -> Job:
        """Admit one request; returns its (possibly pre-existing) job.

        Cache hits return an already-completed job; identical in-flight
        fingerprints return the job already queued/running for them.
        """
        admitted_at = time.perf_counter()
        fingerprint = request.fingerprint()  # validates; may raise ConfigError
        job_id = job_id_for(fingerprint)
        with self._lock:
            # Checked (and the job enqueued) under the same lock close()
            # takes to flip _stopping, so a job can never slip in after
            # the stop sentinel and sit 'queued' forever.
            if self._thread is None or self._stopping:
                raise ServiceError("service is not running; call start() first")
            self.metrics.requests.inc()
            existing = self._jobs.get(job_id)
            if existing is not None and existing.status in ("queued", "running"):
                self.metrics.deduplicated.inc()
                return existing
            cached = self.cache.get(fingerprint)
            if cached is not None:
                self.metrics.served_from_cache.inc()
                job = Job(
                    id=job_id,
                    fingerprint=fingerprint,
                    request=request,
                    cached=True,
                )
                job.finish(cached)
                self._jobs.pop(job_id, None)  # re-insert as most recent
                self._jobs[job_id] = job
                self._prune_history()
                self.metrics.cache_hit_latency.observe(
                    time.perf_counter() - admitted_at
                )
                return job
            if self._pending >= self.config.queue_depth:
                raise ServiceError(
                    f"queue full ({self.config.queue_depth} pending); retry later"
                )
            job = Job(id=job_id, fingerprint=fingerprint, request=request)
            self._jobs[job_id] = job
            self._pending += 1
            self.metrics.queue_pending.set(self._pending)
            self._prune_history()
            assert self._loop is not None and self._queue is not None
            self._loop.call_soon_threadsafe(self._queue.put_nowait, job)
        return job

    def _prune_history(self) -> None:
        """Drop the oldest finished jobs beyond ``job_history`` (lock held).

        Bounds the job table in a long-lived process: queue_depth
        bounds pending work and the result cache bounds cached values,
        but without this the per-job result dicts (full tour lists)
        would accumulate forever.  Queued/running jobs are never
        dropped — their submitters still hold the job id.
        """
        excess = len(self._jobs) - self.config.job_history
        if excess <= 0:
            return
        for job_id in [
            job_id
            for job_id, job in self._jobs.items()  # insertion order = oldest first
            if job.status in ("done", "failed")
        ][:excess]:
            del self._jobs[job_id]

    def solve(self, request: SolveRequest, timeout: float | None = None) -> Job:
        """Submit and block until done (convenience for bench/tests)."""
        job = self.submit(request)
        return self.wait(job.id, timeout=timeout)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        job = self.job(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        if not job.done_event.wait(timeout):
            raise ServiceError(f"job {job_id!r} did not finish within {timeout}s")
        return job

    def stats(self) -> dict:
        metrics = self.metrics
        with self._lock:
            counters = {
                "requests": metrics.requests.value,
                "deduplicated": metrics.deduplicated.value,
                "served_from_cache": metrics.served_from_cache.value,
                "completed": metrics.completed.value,
                "failed": metrics.failed.value,
                "batches": metrics.batches.value,
                "batched_requests": metrics.batched_requests.value,
                "windows": metrics.windows.value,
            }
            jobs_by_status: dict[str, int] = {}
            for job in self._jobs.values():
                jobs_by_status[job.status] = jobs_by_status.get(job.status, 0) + 1
            pending = self._pending
        return {
            "uptime_seconds": time.time() - self.started_at,
            "queue": {
                "pending": pending,
                "depth": self.config.queue_depth,
                "batch_window": self.config.batch_window,
                "max_batch": self.config.max_batch,
                "workers": self.config.workers,
            },
            "requests": counters,
            "jobs": jobs_by_status,
            "cache": self.cache.stats(),
        }

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self) -> None:
        """Dispatcher main loop: collect a window, group, run, repeat."""
        assert self._loop is not None and self._queue is not None
        while True:
            first = await self._queue.get()
            if first is _STOP:
                return
            batch = [first]
            stop = await self._collect_window(batch)
            groups: dict[tuple, list[Job]] = {}
            for job in batch:
                groups.setdefault(job.request.group_key(), []).append(job)
            self.metrics.batches.inc(len(groups))
            self.metrics.batched_requests.inc(len(batch))
            # Observe the window occupancy *before* group_key splits it:
            # distinct seeds (every loadgen cold request) land in their
            # own single-job groups, so per-group sizes would report a
            # constant 1.0 no matter how well the window coalesces.
            self.metrics.windows.inc()
            self.metrics.batch_size.observe(len(batch))
            with self._lock:
                for job in batch:
                    job.status = "running"
            # Incompatible groups from one window run concurrently —
            # they share the wavefront pool, so serializing them would
            # idle workers and stack latency per extra group.
            await asyncio.gather(*(
                self._loop.run_in_executor(None, self._run_group, jobs)
                for jobs in groups.values()
            ))
            if stop:
                return

    async def _collect_window(self, batch: list[Job]) -> bool:
        """Fill ``batch`` up to ``max_batch`` within the batching window.

        Returns True when the stop sentinel arrived mid-window.
        """
        assert self._loop is not None and self._queue is not None
        deadline = self._loop.time() + self.config.batch_window
        while len(batch) < self.config.max_batch:
            remaining = deadline - self._loop.time()
            try:
                if remaining > 0:
                    item = await asyncio.wait_for(self._queue.get(), remaining)
                else:
                    item = self._queue.get_nowait()
            except (asyncio.TimeoutError, asyncio.QueueEmpty):
                return False
            if item is _STOP:
                return True
            batch.append(item)
        return False

    def _run_group(self, jobs: list[Job]) -> None:
        """Run one compatible group as a single engine task batch."""
        tasks = [
            ReplicaTask(
                spec=job.request.spec,
                solver=job.request.solver,
                params=job.request.params,
                seed=job.request.seed,
                index=0,
                instance_index=position,
            )
            for position, job in enumerate(jobs)
        ]
        # Resolve the shared pool first: when it declines (workers=1 or
        # a single task), run inline rather than letting run_tasks spin
        # up a throwaway ProcessPoolExecutor per dispatch — sporadic
        # single-request traffic must not pay pool startup every time.
        executor = self.pool.executor_for(len(tasks))
        try:
            replicas = run_tasks(
                tasks,
                workers=1 if executor is None else self.config.workers,
                executor=executor,
            )
        except ReproError as exc:
            self._finish_group(jobs, error=str(exc))
            return
        except Exception as exc:  # worker crash: fail the group, keep serving
            self._finish_group(jobs, error=f"{type(exc).__name__}: {exc}")
            return
        for job, replica in zip(jobs, replicas):
            value = {
                "instance": job.request.spec.label,
                "n": int(replica.order.size),
                "solver": job.request.solver,
                "seed": job.request.seed,
                "params": dict(job.request.params),
                "length": replica.length,
                "tour": [int(city) for city in replica.order],
                "tour_hash": tour_hash(replica.order),
                "solve_seconds": replica.seconds,
                "setup_seconds": replica.setup_seconds,
            }
            self.cache.put(job.fingerprint, value)
            job.finish(value)
            self.metrics.solve_latency.observe(
                job.finished_at - job.submitted_at
            )
        self.metrics.completed.inc(len(jobs))
        with self._lock:
            self._pending -= len(jobs)
            self.metrics.queue_pending.set(self._pending)

    def _finish_group(self, jobs: list[Job], error: str) -> None:
        for job in jobs:
            job.finish(None, error=error)
        self.metrics.failed.inc(len(jobs))
        with self._lock:
            self._pending -= len(jobs)
            self.metrics.queue_pending.set(self._pending)
