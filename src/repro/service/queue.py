"""Solve-as-a-service: asyncio job queue with micro-batching.

:class:`SolveService` turns the one-shot solve path into a long-lived
serving process:

* **admission** — a :class:`SolveRequest` is fingerprinted
  (:mod:`repro.service.fingerprint`); cache hits complete immediately,
  identical in-flight fingerprints deduplicate onto one job, and a
  full queue refuses with :class:`~repro.errors.ServiceError`
  (backpressure, never unbounded memory);
* **micro-batching** — an asyncio dispatcher collects requests for up
  to ``batch_window`` seconds, groups compatible ones (same solver /
  params / seed), and runs each group as one engine job
  (:func:`repro.engine.runner.run_tasks`) over the service's shared
  :class:`~repro.engine.wavefront.WavefrontPool`;
* **determinism** — every request carries an explicit integer seed
  that the engine task uses *directly* (no replica-seed derivation),
  so a service solve is bit-identical to ``repro solve`` with the same
  instance/config/seed, and job IDs are derived from the fingerprint
  (re-submitting an identical request always names the same job);
* **fault tolerance** (PR 7) — groups run through the pool's
  crash-recovering :meth:`~repro.engine.wavefront.WavefrontPool
  .map_outcomes`, so a killed worker triggers respawn + bit-identical
  replay and one task's failure never poisons its group siblings;
  while the pool is degraded, new work is shed with
  :class:`~repro.errors.ShedError` (HTTP 503 + ``Retry-After``).
  Requests may carry a ``deadline_seconds``: jobs past deadline are
  cancelled before dispatch, and in-flight groups get a watchdog that
  expires only the overdue fingerprints.  ``stop(drain=True)``
  finishes admitted jobs before exit; ``drain=False`` fails the
  still-queued remainder fast.

The event loop runs on a dedicated daemon thread; ``submit``/``job``/
``stats`` are thread-safe and callable from any number of HTTP handler
threads.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import dataclass, field

from repro.core.config import ServiceConfig
from repro.engine.arena import MATRIX_SHARE_LIMIT, InstanceArena, content_key
from repro.engine.jobs import InstanceSpec, spec_from_token
from repro.engine.portfolio import WARM_CAPABLE, Trajectory, plan_arms, race
from repro.engine.recovery import RetryPolicy
from repro.engine.runner import ReplicaTask, run_replica_task
from repro.engine.wavefront import WavefrontPool
from repro.errors import (
    ConfigError,
    PoolBrokenError,
    ReproError,
    ServiceError,
    ShedError,
)
from repro.service.cache import ResultCache, instance_signature
from repro.service.fingerprint import (
    canonical_params,
    canonical_seed,
    solve_fingerprint,
)
from repro.service.metrics import ServiceMetrics
from repro.utils.hashing import tour_hash

#: Job-id prefix + fingerprint digits: deterministic, short, greppable.
_JOB_ID_DIGITS = 16

#: Solvers whose kernels consume the full distance matrix; only their
#: dispatches pay the parent-side O(n^2) matrix build so it can be
#: published once instead of recomputed per worker process.  Everything
#: else (the hierarchical TAXI pipeline works from coordinates) gets a
#: coords-only arena entry.
_FULL_MATRIX_SOLVERS = frozenset({"sa_tsp"})

#: Solvers that consume the per-process candidate-list cache.  Above
#: the matrix share limit their dispatches publish the O(n·k)
#: CandidateLists blocks instead, so worker processes share one k-NN
#: build the same way small instances share one matrix.
_CANDIDATE_SOLVERS = frozenset({"two_opt"})

#: Dispatcher shutdown sentinel.
_STOP = object()


@dataclass(frozen=True)
class SolveRequest:
    """One admitted, validated solve request.

    Build through :meth:`create`, which canonicalizes the parameter set
    and seed at the boundary — a constructed request is always
    fingerprintable.
    """

    spec: InstanceSpec
    solver: str = "taxi"
    params: tuple[tuple[str, object], ...] = ()
    seed: int = 0
    #: Operational hint, deliberately excluded from the fingerprint and
    #: the group key: two requests for the same content are the same
    #: solve whatever their patience.
    deadline_seconds: float | None = None

    @classmethod
    def create(
        cls,
        instance,
        solver: str = "taxi",
        params: dict | None = None,
        seed: object = 0,
        deadline_seconds: object = None,
    ) -> "SolveRequest":
        """Validate and canonicalize one request from loose inputs.

        ``instance`` accepts everything ``repro batch`` does (benchmark
        size/name, TSPLIB path, ``family:n[:seed]`` token) plus an
        inline :class:`~repro.tsp.instance.TSPInstance`.
        """
        deadline: float | None = None
        if deadline_seconds is not None:
            if isinstance(deadline_seconds, bool) or not isinstance(
                deadline_seconds, (int, float)
            ):
                raise ConfigError(
                    f"deadline_seconds must be a positive number, got "
                    f"{deadline_seconds!r}"
                )
            deadline = float(deadline_seconds)
            if not deadline > 0:
                raise ConfigError(
                    f"deadline_seconds must be > 0, got {deadline}"
                )
        spec = spec_from_token(instance)
        if spec.size:
            # Admission-time capacity check: a full-matrix solver over
            # an oversized instance is rejected at the service boundary
            # (clear ConfigError naming sparse-capable solvers), never
            # queued to fail inside a worker.
            from repro.engine.registry import check_instance_capacity

            check_instance_capacity(solver, spec.size)
        return cls(
            spec=spec,
            solver=solver,
            params=canonical_params(params),
            seed=canonical_seed(seed),
            deadline_seconds=deadline,
        )

    def fingerprint(self) -> str:
        """Content-addressed key (resolves the instance to hash its bytes)."""
        return solve_fingerprint(
            self.spec.resolve(), self.solver, dict(self.params), self.seed
        )

    def group_key(self) -> tuple:
        """Requests sharing this key may ride one micro-batched engine job."""
        return (self.solver, self.params, self.seed)


#: Job statuses that count as finished (history-prunable).
_FINISHED = ("done", "failed", "expired")


@dataclass
class Job:
    """One tracked solve job (shared by every duplicate submission)."""

    id: str
    fingerprint: str
    request: SolveRequest
    status: str = "queued"  # queued | running | done | failed | expired
    cached: bool = False
    result: dict | None = None
    error: str | None = None
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    #: Wall-clock instant the job's deadline expires (None = no deadline).
    deadline_at: float | None = None
    done_event: threading.Event = field(default_factory=threading.Event, repr=False)
    _finish_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False
    )

    def finish(
        self,
        result: dict | None,
        error: str | None = None,
        status: str | None = None,
    ) -> bool:
        """Record the terminal state; first finish wins (idempotent).

        The deadline watchdog and the engine can race to conclude the
        same job — e.g. the watchdog expires it while the solve is
        still running and completes later.  Returns True only for the
        call that actually finished the job, so accounting (pending
        decrement, completed/failed counters) happens exactly once.
        """
        with self._finish_lock:
            if self.done_event.is_set():
                return False
            self.result = result
            self.error = error
            self.status = status or ("failed" if error is not None else "done")
            self.finished_at = time.time()
            self.done_event.set()
            return True

    def as_dict(self) -> dict:
        """JSON-safe view (what ``GET /jobs/<id>`` returns)."""
        return {
            "job_id": self.id,
            "fingerprint": self.fingerprint,
            "status": self.status,
            "cached": self.cached,
            "solver": self.request.solver,
            "instance": self.request.spec.label,
            "seed": self.request.seed,
            "params": dict(self.request.params),
            # The *effective* deadline: the request's own, or the
            # service default the queue applied at admission.
            "deadline_seconds": (
                self.deadline_at - self.submitted_at
                if self.deadline_at is not None
                else self.request.deadline_seconds
            ),
            "result": self.result,
            "error": self.error,
        }


def job_id_for(fingerprint: str) -> str:
    """Deterministic job id: same request content -> same id, always."""
    return f"job-{fingerprint[:_JOB_ID_DIGITS]}"


class SolveService:
    """The serving facade: cache + queue + dispatcher + worker pool."""

    def __init__(
        self,
        config: ServiceConfig | None = None,
        fault_injector=None,
    ) -> None:
        self.config = config or ServiceConfig()
        # The metrics ledger is the single source of truth for every
        # counter: stats(), GET /metrics, and the loadgen summary all
        # read the same instruments (no parallel bookkeeping to drift).
        self.metrics = ServiceMetrics()
        self.metrics.queue_depth_limit.set(self.config.queue_depth)
        self.cache = ResultCache(
            self.config.cache_size, self.config.cache_path,
            metrics=self.metrics,
        )
        self._retry_policy = RetryPolicy(
            max_retries=self.config.max_retries,
            backoff_base=self.config.retry_backoff,
        )
        # eager=True: with a long-lived pool, single-request traffic
        # should ride it too — otherwise light traffic silently
        # bypasses (and never exercises or recovers) the pool.
        self.pool = WavefrontPool(
            workers=self.config.workers,
            policy=self._retry_policy,
            eager=True,
            on_respawn=self.metrics.pool_respawns.inc,
            on_degraded=self._on_pool_degraded,
        )
        #: Optional chaos hook (duck-typed :class:`~repro.service
        #: .faults.FaultInjector`): consulted before each group
        #: dispatch (worker kills) and before each task (latency /
        #: transient faults).
        self.fault_injector = fault_injector
        # Shared-memory instance arena: dispatched tasks carry tiny
        # content-addressed refs instead of pickled coordinate/matrix
        # payloads; pool workers attach the blocks read-only.
        self.arena = InstanceArena() if self.config.arena_enabled() else None
        self.started_at = time.time()
        self._jobs: dict[str, Job] = {}
        self._lock = threading.Lock()
        self._pending = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._queue: asyncio.Queue | None = None
        self._thread: threading.Thread | None = None
        self._stopping = False
        self._drain = True

    def _on_pool_degraded(self, active: bool, seconds: float) -> None:
        self.metrics.degraded.set(1.0 if active else 0.0)
        if not active and seconds > 0:
            self.metrics.degraded_seconds.inc(seconds)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "SolveService":
        """Start the dispatcher loop on a daemon thread (idempotent)."""
        if self._thread is not None:
            return self
        ready = threading.Event()

        def runner() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            self._queue = asyncio.Queue()
            ready.set()
            try:
                loop.run_until_complete(self._dispatch())
            finally:
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-service-dispatch", daemon=True
        )
        self._thread.start()
        ready.wait()
        # Warm the worker pool up front: serving should not pay pool
        # startup on the first dispatch, and the chaos harness needs
        # live worker PIDs to aim at.
        self.pool.prestart()
        return self

    def stop(self, drain: bool = True) -> None:
        """Shut down: stop the dispatcher + pool, persist the cache.

        ``drain=True`` (graceful, the SIGTERM path): jobs admitted
        before the stop are still solved — the stop sentinel queues
        behind them, and the lock hand-off with :meth:`submit`
        guarantees no job is enqueued after the sentinel, so nothing
        can be left 'queued' forever.  ``drain=False`` fails the
        still-queued jobs fast ("shutting down") instead of solving
        them; jobs already dispatched to the engine finish either way.
        """
        with self._lock:
            thread, loop, queue = self._thread, self._loop, self._queue
            self._stopping = True
            self._drain = drain
        if thread is not None:
            assert loop is not None and queue is not None
            loop.call_soon_threadsafe(queue.put_nowait, _STOP)
            thread.join(timeout=30)
            with self._lock:
                self._thread = None
                self._loop = None
                self._queue = None
        self.pool.close()
        if self.arena is not None:
            self.arena.close()
        if self.config.cache_path is not None:
            self.cache.save()

    def close(self) -> None:
        """Graceful shutdown (alias for ``stop(drain=True)``)."""
        self.stop(drain=True)

    def __enter__(self) -> "SolveService":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def submit(self, request: SolveRequest) -> Job:
        """Admit one request; returns its (possibly pre-existing) job.

        Cache hits return an already-completed job; identical in-flight
        fingerprints return the job already queued/running for them.
        """
        admitted_at = time.perf_counter()
        fingerprint = request.fingerprint()  # validates; may raise ConfigError
        job_id = job_id_for(fingerprint)
        with self._lock:
            # Checked (and the job enqueued) under the same lock close()
            # takes to flip _stopping, so a job can never slip in after
            # the stop sentinel and sit 'queued' forever.
            if self._thread is None or self._stopping:
                raise ServiceError("service is not running; call start() first")
            self.metrics.requests.inc()
            existing = self._jobs.get(job_id)
            if existing is not None and existing.status in ("queued", "running"):
                self.metrics.deduplicated.inc()
                return existing
            cached = self.cache.get(fingerprint)
            if cached is not None:
                self.metrics.served_from_cache.inc()
                job = Job(
                    id=job_id,
                    fingerprint=fingerprint,
                    request=request,
                    cached=True,
                )
                job.finish(cached)
                self._jobs.pop(job_id, None)  # re-insert as most recent
                self._jobs[job_id] = job
                self._prune_history()
                self.metrics.cache_hit_latency.observe(
                    time.perf_counter() - admitted_at
                )
                return job
            # Degraded pool (worker crash, respawn in flight): shed new
            # engine work with a retry hint instead of queueing behind
            # an uncertain recovery.  Checked after the cache — hits
            # don't need the pool and are still served.
            if self.pool.degraded:
                self.metrics.shed.inc()
                raise ShedError(
                    "service degraded (worker pool respawning); retry "
                    f"in {self.config.shed_retry_after:g}s",
                    retry_after=self.config.shed_retry_after,
                )
            if self._pending >= self.config.queue_depth:
                raise ServiceError(
                    f"queue full ({self.config.queue_depth} pending); retry later"
                )
            deadline = request.deadline_seconds
            if deadline is None:
                deadline = self.config.default_deadline
            job = Job(id=job_id, fingerprint=fingerprint, request=request)
            if deadline is not None:
                job.deadline_at = job.submitted_at + deadline
            self._jobs[job_id] = job
            self._pending += 1
            self.metrics.queue_pending.set(self._pending)
            self._prune_history()
            assert self._loop is not None and self._queue is not None
            self._loop.call_soon_threadsafe(self._queue.put_nowait, job)
        return job

    def _prune_history(self) -> None:
        """Drop the oldest finished jobs beyond ``job_history`` (lock held).

        Bounds the job table in a long-lived process: queue_depth
        bounds pending work and the result cache bounds cached values,
        but without this the per-job result dicts (full tour lists)
        would accumulate forever.  Queued/running jobs are never
        dropped — their submitters still hold the job id.
        """
        excess = len(self._jobs) - self.config.job_history
        if excess <= 0:
            return
        for job_id in [
            job_id
            for job_id, job in self._jobs.items()  # insertion order = oldest first
            if job.status in _FINISHED
        ][:excess]:
            del self._jobs[job_id]

    def solve(self, request: SolveRequest, timeout: float | None = None) -> Job:
        """Submit and block until done (convenience for bench/tests)."""
        job = self.submit(request)
        return self.wait(job.id, timeout=timeout)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        job = self.job(job_id)
        if job is None:
            raise ServiceError(f"unknown job {job_id!r}")
        if not job.done_event.wait(timeout):
            raise ServiceError(f"job {job_id!r} did not finish within {timeout}s")
        return job

    def stats(self) -> dict:
        metrics = self.metrics
        with self._lock:
            counters = {
                "requests": metrics.requests.value,
                "deduplicated": metrics.deduplicated.value,
                "served_from_cache": metrics.served_from_cache.value,
                "completed": metrics.completed.value,
                "failed": metrics.failed.value,
                "batches": metrics.batches.value,
                "batched_requests": metrics.batched_requests.value,
                "windows": metrics.windows.value,
                "retries": metrics.retries.value,
                "deadline_expired": metrics.deadline_expired.value,
                "shed": metrics.shed.value,
                "pool_respawns": metrics.pool_respawns.value,
                "partial_group_failures": (
                    metrics.partial_group_failures.value
                ),
            }
            jobs_by_status: dict[str, int] = {}
            for job in self._jobs.values():
                jobs_by_status[job.status] = jobs_by_status.get(job.status, 0) + 1
            pending = self._pending
        return {
            "uptime_seconds": time.time() - self.started_at,
            "queue": {
                "pending": pending,
                "depth": self.config.queue_depth,
                "batch_window": self.config.batch_window,
                "max_batch": self.config.max_batch,
                "workers": self.config.workers,
            },
            "requests": counters,
            "jobs": jobs_by_status,
            "cache": self.cache.stats(),
            "arena": (
                {"enabled": True, **self.arena.stats()}
                if self.arena is not None else {"enabled": False}
            ),
            "health": {
                "running": self._thread is not None and not self._stopping,
                "degraded": self.pool.degraded,
                "pool_respawns": self.pool.respawns,
                # Chaos visibility over HTTP: a remote loadtest can
                # cross-check the server's fault schedule + injection
                # counts without being in the server process.
                "chaos_schedule": (
                    self.fault_injector.schedule_digest()
                    if self.fault_injector is not None else None
                ),
                "chaos_injected": (
                    self.fault_injector.stats()
                    if self.fault_injector is not None else None
                ),
            },
        }

    def health(self) -> dict:
        """Liveness view (``GET /healthz``): the process answers."""
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started_at,
        }

    def ready(self) -> tuple[bool, dict]:
        """Readiness view (``GET /readyz``): able to take new solves now.

        Not ready while the dispatcher is down/stopping or the pool is
        degraded (mid-respawn) — exactly the states where
        :meth:`submit` would refuse or shed.
        """
        with self._lock:
            running = self._thread is not None and not self._stopping
        degraded = self.pool.degraded
        ready = running and not degraded
        return ready, {
            "ready": ready,
            "running": running,
            "degraded": degraded,
            "pool_respawns": self.pool.respawns,
            "retry_after": None if ready else self.config.shed_retry_after,
        }

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _dispatch(self) -> None:
        """Dispatcher main loop: collect a window, group, run, repeat."""
        assert self._loop is not None and self._queue is not None
        while True:
            first = await self._queue.get()
            if first is _STOP:
                return
            batch = [first]
            stop = await self._collect_window(batch)
            if self._stopping and not self._drain:
                # Non-drain stop: fail whatever is still only queued,
                # fast, instead of solving it.
                for job in batch:
                    if self._conclude(job, error="service shutting down"):
                        self.metrics.failed.inc()
                if stop:
                    return
                continue
            self.metrics.batched_requests.inc(len(batch))
            # Observe the window occupancy *before* group_key splits it:
            # distinct seeds (every loadgen cold request) land in their
            # own single-job groups, so per-group sizes would report a
            # constant 1.0 no matter how well the window coalesces.
            self.metrics.windows.inc()
            self.metrics.batch_size.observe(len(batch))
            # Deadline gate: jobs already past deadline are cancelled
            # here, before any engine work is spent on them.
            now = time.time()
            live: list[Job] = []
            for job in batch:
                if job.deadline_at is not None and now >= job.deadline_at:
                    if self._conclude(
                        job,
                        error="deadline expired while queued",
                        status="expired",
                    ):
                        self.metrics.deadline_expired.inc()
                else:
                    live.append(job)
            if not live:
                if stop:
                    return
                continue
            groups: dict[tuple, list[Job]] = {}
            for job in live:
                groups.setdefault(job.request.group_key(), []).append(job)
            self.metrics.batches.inc(len(groups))
            with self._lock:
                for job in live:
                    job.status = "running"
            # Incompatible groups from one window run concurrently —
            # they share the wavefront pool, so serializing them would
            # idle workers and stack latency per extra group.
            await asyncio.gather(*(
                self._loop.run_in_executor(None, self._run_group, jobs)
                for jobs in groups.values()
            ))
            if stop:
                return

    async def _collect_window(self, batch: list[Job]) -> bool:
        """Fill ``batch`` up to ``max_batch`` within the batching window.

        Returns True when the stop sentinel arrived mid-window.
        """
        assert self._loop is not None and self._queue is not None
        deadline = self._loop.time() + self.config.batch_window
        while len(batch) < self.config.max_batch:
            remaining = deadline - self._loop.time()
            try:
                if remaining > 0:
                    item = await asyncio.wait_for(self._queue.get(), remaining)
                else:
                    item = self._queue.get_nowait()
            except (asyncio.TimeoutError, asyncio.QueueEmpty):
                return False
            if item is _STOP:
                return True
            batch.append(item)
        return False

    def _conclude(
        self,
        job: Job,
        result: dict | None = None,
        error: str | None = None,
        status: str | None = None,
    ) -> bool:
        """Finish one queued job exactly once + keep pending accounting.

        Safe to call from the dispatcher, the group runner, and the
        deadline watchdog concurrently: only the first caller wins
        (and decrements ``_pending``).  Never used for cache-hit jobs,
        which are finished at admission and never counted pending.
        """
        if not job.finish(result, error=error, status=status):
            return False
        with self._lock:
            self._pending -= 1
            self.metrics.queue_pending.set(self._pending)
        return True

    def _count_retry(self, _task, _error) -> None:
        self.metrics.retries.inc()

    def _dispatch_spec(self, request: SolveRequest) -> InstanceSpec:
        """The spec a dispatched task ships: arena-backed when possible.

        Publishing is content-addressed and idempotent, so repeated
        dispatches of one instance reuse the first blocks.  The arena
        is an optimization, never a correctness gate — any publish
        failure (oversized explicit matrix, shared-memory exhaustion)
        falls back to the original picklable spec.
        """
        if self.arena is None or request.spec.kind == "arena":
            return request.spec
        try:
            instance = request.spec.resolve()
            with_candidates = 0
            if (request.solver in _CANDIDATE_SOLVERS
                    and instance.n > MATRIX_SHARE_LIMIT):
                params = dict(request.params)
                with_candidates = min(
                    int(params.get("k", 8)), instance.n - 1
                )
            ref = self.arena.publish(
                instance,
                with_matrix=request.solver in _FULL_MATRIX_SOLVERS,
                with_candidates=with_candidates,
            )
        except Exception:
            return request.spec
        self.metrics.arena_publishes.inc()
        arena_stats = self.arena.stats()
        self.metrics.arena_instances.set(arena_stats["instances"])
        self.metrics.arena_bytes.set(arena_stats["bytes"])
        return InstanceSpec.shared(ref)

    def _run_group(self, jobs: list[Job]) -> None:
        """Run one compatible group as a single engine task batch.

        Fault handling is per task: one job's deterministic failure
        (bad instance, non-finite tour) fails only that job's
        fingerprint — its group siblings still resolve.  Worker
        crashes are respawned + replayed and transients retried inside
        :meth:`WavefrontPool.map_outcomes`; only exhausted recovery
        (:class:`PoolBrokenError`) fails the whole group.
        """
        if self.fault_injector is not None:
            self.fault_injector.on_dispatch(self.pool)
        if jobs and jobs[0].request.solver == "portfolio":
            self._run_portfolio_group(jobs)
            return
        tasks = [
            ReplicaTask(
                spec=self._dispatch_spec(job.request),
                solver=job.request.solver,
                params=job.request.params,
                seed=job.request.seed,
                index=0,
                instance_index=position,
            )
            for position, job in enumerate(jobs)
        ]
        # In-flight deadline watchdog: expires only the overdue jobs
        # while the rest of the group keeps solving.
        watchdog_done = threading.Event()
        watchdog: threading.Thread | None = None
        if any(job.deadline_at is not None for job in jobs):
            watchdog = threading.Thread(
                target=self._deadline_watchdog,
                args=(jobs, watchdog_done),
                name="repro-deadline-watchdog",
                daemon=True,
            )
            watchdog.start()
        before_task = (
            self.fault_injector.on_task
            if self.fault_injector is not None else None
        )
        try:
            outcomes = self.pool.map_outcomes(
                run_replica_task,
                tasks,
                before_task=before_task,
                on_retry=self._count_retry,
            )
        except PoolBrokenError as exc:
            self._fail_group(jobs, error=str(exc))
            return
        except Exception as exc:  # defensive: keep serving whatever breaks
            self._fail_group(jobs, error=f"{type(exc).__name__}: {exc}")
            return
        finally:
            watchdog_done.set()
            if watchdog is not None:
                watchdog.join()
        succeeded = failed = 0
        for job, outcome in zip(jobs, outcomes):
            if outcome.ok:
                _, replica = outcome.value
                value = {
                    "instance": job.request.spec.label,
                    "n": int(replica.order.size),
                    "solver": job.request.solver,
                    "seed": job.request.seed,
                    "params": dict(job.request.params),
                    "length": replica.length,
                    "tour": [int(city) for city in replica.order],
                    "tour_hash": tour_hash(replica.order),
                    "solve_seconds": replica.seconds,
                    "setup_seconds": replica.setup_seconds,
                }
                # Cache before concluding: even if the watchdog already
                # expired this job, the finished work is still a valid
                # content-addressed result for future requests.
                self.cache.put(job.fingerprint, value,
                               signature=self._result_signature(job.request))
                succeeded += 1
                if self._conclude(job, result=value):
                    self.metrics.completed.inc()
                    self.metrics.solve_latency.observe(
                        job.finished_at - job.submitted_at
                    )
            else:
                error = outcome.error
                message = (
                    str(error) if isinstance(error, ReproError)
                    else f"{type(error).__name__}: {error}"
                )
                failed += 1
                if self._conclude(job, error=message):
                    self.metrics.failed.inc()
        if succeeded and failed:
            self.metrics.partial_group_failures.inc()

    def _result_signature(self, request: SolveRequest):
        """Locality signature to register with the warm-start tier, or None."""
        if not self.config.warm_start_enabled():
            return None
        try:
            return instance_signature(request.spec.resolve())
        except Exception:  # a failed signature must never fail the solve
            return None

    def _run_portfolio_group(self, jobs: list[Job]) -> None:
        """Race portfolio arms across the service pool, one job at a time.

        Each job fans its planned arms over the shared
        :class:`WavefrontPool` via :func:`repro.engine.portfolio.race`
        (the jobs of one group share params/seed but name different
        instances, so their arm sets differ and cannot be merged into
        one wave).  Deadline watchdog semantics match
        :meth:`_run_group`.
        """
        watchdog_done = threading.Event()
        watchdog: threading.Thread | None = None
        if any(job.deadline_at is not None for job in jobs):
            watchdog = threading.Thread(
                target=self._deadline_watchdog,
                args=(jobs, watchdog_done),
                name="repro-deadline-watchdog",
                daemon=True,
            )
            watchdog.start()
        try:
            for job in jobs:
                self._run_portfolio_job(job)
        finally:
            watchdog_done.set()
            if watchdog is not None:
                watchdog.join()

    def _run_portfolio_job(self, job: Job) -> None:
        """Plan, warm-seed, and race one portfolio solve to conclusion."""
        request = job.request
        signature = None
        try:
            instance = request.spec.resolve()
            params = dict(request.params)
            budget = float(params.get("budget_seconds", 2.0))
            trajectory = (
                Trajectory.load(self.config.trajectory_dir)
                if self.config.trajectory_dir else None
            )
            arms = plan_arms(
                instance.n,
                budget_seconds=budget,
                seed=request.seed,
                digest=content_key(instance),
                max_arms=int(params.get("max_arms", 4)),
                trajectory=trajectory,
            )
            # Near-match warm start: this job is here because its exact
            # fingerprint missed; a geometrically similar cached tour
            # can still seed the annealing arms.
            warm_start = warm_source = None
            if self.config.warm_start_enabled() and any(
                    arm.solver in WARM_CAPABLE for arm in arms):
                signature = instance_signature(instance)
                near = self.cache.find_similar(
                    signature, self.config.warm_threshold)
                if near is not None and isinstance(near[1].get("tour"), list):
                    warm_source, warm_start = near[0], near[1]["tour"]
            elif self.config.warm_start_enabled():
                signature = instance_signature(instance)
            result = race(
                arms,
                spec=self._dispatch_spec(request),
                pool=self.pool,
                mode=str(params.get("mode", "best")),
                accept_ratio=float(params.get("accept_ratio", 1.0)),
                budget_seconds=budget,
                warm_start=warm_start,
                warm_source=warm_source,
            )
        except ReproError as exc:
            if self._conclude(job, error=str(exc)):
                self.metrics.failed.inc()
            return
        except Exception as exc:  # defensive: keep serving whatever breaks
            if self._conclude(job, error=f"{type(exc).__name__}: {exc}"):
                self.metrics.failed.inc()
            return
        launched = sum(
            1 for outcome in result.outcomes if outcome.status != "cancelled")
        self.metrics.portfolio_arms.inc(launched)
        self.metrics.portfolio_win(result.winner.label)
        if result.warm_source is not None:
            self.metrics.warm_starts.inc()
        value = {
            "instance": request.spec.label,
            "n": int(result.order.size),
            "solver": request.solver,
            "seed": request.seed,
            "params": dict(request.params),
            "length": result.length,
            "tour": [int(city) for city in result.order],
            "tour_hash": tour_hash(result.order),
            "solve_seconds": result.seconds,
            "setup_seconds": 0.0,
            "portfolio": result.ledger(),
        }
        if result.warm_source is not None:
            value["warm_start"] = result.warm_source[:16]
        self.cache.put(job.fingerprint, value, signature=signature)
        if self._conclude(job, result=value):
            self.metrics.completed.inc()
            self.metrics.solve_latency.observe(
                job.finished_at - job.submitted_at)

    def _fail_group(self, jobs: list[Job], error: str) -> None:
        for job in jobs:
            if self._conclude(job, error=error):
                self.metrics.failed.inc()

    def _deadline_watchdog(
        self, jobs: list[Job], done: threading.Event
    ) -> None:
        """Expire overdue jobs of one running group, earliest first.

        ``done`` is set when the group's engine run returns; the
        watchdog then stands down (jobs that finished in time were
        concluded by the runner — ``_conclude`` makes the race safe).
        """
        pending = sorted(
            (job for job in jobs if job.deadline_at is not None),
            key=lambda job: job.deadline_at,
        )
        for job in pending:
            remaining = job.deadline_at - time.time()
            if remaining > 0 and done.wait(remaining):
                return
            if done.is_set():
                return
            if job.done_event.is_set():
                continue
            if self._conclude(
                job,
                error="deadline expired while solving",
                status="expired",
            ):
                self.metrics.deadline_expired.inc()
