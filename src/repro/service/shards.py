"""Sharded multi-process serving: fingerprint-routed shard fleet.

``repro serve --shards N`` turns the single :class:`~repro.service
.queue.SolveService` process into a fleet: N shard processes, each a
complete single service (own queue, own :class:`~repro.service.cache
.ResultCache`, own :class:`~repro.engine.wavefront.WavefrontPool`, own
shared-memory arena) listening on an ephemeral localhost port, fronted
by a router that hash-routes every request by its solve fingerprint.

Routing is a pure function of content (:func:`shard_for`): the sha256
of the fingerprint's job-id prefix, mod the shard count.  Both ``POST
/solve`` (which computes the full fingerprint) and ``GET /jobs/<id>``
(whose id carries exactly that prefix) therefore route identically —
a submitted job is always found again, dedup and result caching stay
per-fingerprint-correct without any cross-shard chatter, and because
every shard runs the same deterministic engine, the same request
yields a bit-identical tour at any shard count (asserted in tests).

Fault tolerance mirrors the in-process pool contract one level up: a
monitor thread watches shard processes; a dead shard (crash, SIGKILL)
is respawned on a fresh port and its undelivered jobs — the router
keeps a ledger of admitted-but-unfinished submissions per shard — are
replayed verbatim.  Deterministic content addressing makes the replay
safe: the re-submitted request has the same fingerprint, the same job
id, and produces the same tour.

Aggregation: the router's ``/stats`` sums every shard's counters into
the same shape a single service reports (plus a ``shards`` block), so
existing clients — the loadgen's counter-delta bookkeeping included —
work unchanged.  ``/metrics`` merges JSON snapshots numerically and,
in Prometheus form, re-labels each shard's samples with ``shard="i"``.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import signal
import threading
import time
import urllib.error
import urllib.request
from collections import OrderedDict
from http.client import HTTPException
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlparse

from repro.core.config import ServiceConfig
from repro.errors import ConfigError, ReproError
from repro.service.http import build_request, parse_wait
from repro.service.metrics import MetricsRegistry
from repro.service.queue import _JOB_ID_DIGITS, job_id_for

#: Seconds the manager waits for a spawned shard to report its port.
_SHARD_START_TIMEOUT = 60.0

#: Monitor poll period (seconds) for dead-shard detection.
_MONITOR_INTERVAL = 0.25

#: Ledger capacity: undelivered submissions retained for crash replay.
_LEDGER_LIMIT = 4096

#: Forward attempts per request before giving up (each failed attempt
#: synchronously respawns the target shard first).
_FORWARD_ATTEMPTS = 3


def shard_for(fingerprint: str, shards: int) -> int:
    """Map one solve fingerprint to its owning shard.

    A pure function of the fingerprint's first ``_JOB_ID_DIGITS`` hex
    characters — exactly the prefix embedded in the job id — hashed
    with sha256 and reduced mod the shard count.  Stable across
    restarts and processes; only changing the shard count remaps.
    """
    if shards < 1:
        raise ConfigError(f"shards must be >= 1, got {shards}")
    if shards == 1:
        return 0
    prefix = fingerprint[:_JOB_ID_DIGITS]
    digest = hashlib.sha256(prefix.encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") % shards


def shard_for_job(job_id: str, shards: int) -> int:
    """Route a ``job-<fp16>`` id to the shard that owns its fingerprint."""
    if not job_id.startswith("job-"):
        raise ConfigError(f"malformed job id {job_id!r}")
    return shard_for(job_id[len("job-"):], shards)


class ShardDownError(ReproError):
    """A shard process did not answer (connection refused/reset/torn)."""


# ----------------------------------------------------------------------
# shard child process
# ----------------------------------------------------------------------

def _shard_entry(index: int, host: str, conn, config: ServiceConfig,
                 verbose: bool, fault_config) -> None:
    """Shard process main: one full service on an ephemeral port.

    Reports the bound port back through ``conn``; drains gracefully on
    SIGTERM (the manager's stop path), exactly like the single-process
    ``repro serve``.
    """
    from repro.service.faults import FaultInjector
    from repro.service.http import make_server

    injector = FaultInjector(fault_config) if fault_config is not None else None
    server, service = make_server(config, host, 0, verbose, injector)
    service.start()

    def _sigterm(_signum, _frame):
        raise SystemExit(0)

    signal.signal(signal.SIGTERM, _sigterm)
    conn.send((server.server_address[1],))
    conn.close()
    try:
        server.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        server.server_close()
        service.stop(drain=True)


class ShardProcess:
    """Lifecycle handle of one shard child (spawned, port-reported)."""

    def __init__(self, index: int, host: str, config: ServiceConfig,
                 verbose: bool = False, fault_config=None) -> None:
        self.index = index
        self.host = host
        self.config = config
        self.verbose = verbose
        self.fault_config = fault_config
        self.port: int | None = None
        self.process: multiprocessing.process.BaseProcess | None = None
        self._conn = None

    def spawn(self) -> "ShardProcess":
        """Launch the child (non-blocking; call :meth:`await_port` next).

        ``spawn`` (not fork): the manager may respawn from a monitor
        thread while HTTP handler threads hold arbitrary locks, which
        a forked child would inherit frozen.
        """
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        self._conn = parent_conn
        self.process = ctx.Process(
            target=_shard_entry,
            args=(self.index, self.host, child_conn, self.config,
                  self.verbose, self.fault_config),
            name=f"repro-shard-{self.index}",
            daemon=False,
        )
        self.process.start()
        child_conn.close()
        return self

    def await_port(self, timeout: float = _SHARD_START_TIMEOUT) -> int:
        assert self._conn is not None, "spawn() first"
        if not self._conn.poll(timeout):
            raise ConfigError(
                f"shard {self.index} did not report a port within {timeout}s"
            )
        (self.port,) = self._conn.recv()
        self._conn.close()
        self._conn = None
        return self.port

    @property
    def base_url(self) -> str:
        assert self.port is not None
        return f"http://{self.host}:{self.port}"

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def terminate(self, grace_seconds: float = 15.0) -> None:
        """SIGTERM (graceful drain), then SIGKILL past the grace period."""
        process = self.process
        if process is None:
            return
        if process.is_alive():
            process.terminate()
            process.join(grace_seconds)
            if process.is_alive():
                process.kill()
                process.join(5.0)
        process.close()
        self.process = None


# ----------------------------------------------------------------------
# the fleet manager
# ----------------------------------------------------------------------

class ShardedService:
    """Manager of N shard processes + fingerprint routing + recovery.

    Transport-agnostic core: the HTTP router (:func:`make_router_server`)
    and the loadgen's direct sharded driver both drive this object.
    Thread-safe — handler threads forward concurrently while the
    monitor thread watches for dead shards.
    """

    def __init__(self, shards: int, config: ServiceConfig | None = None,
                 host: str = "127.0.0.1", verbose: bool = False,
                 fault_config=None) -> None:
        if shards < 1:
            raise ConfigError(f"shards must be >= 1, got {shards}")
        self.shards = shards
        self.config = config or ServiceConfig()
        self.host = host
        self.verbose = verbose
        self.fault_config = fault_config
        self.started_at = time.time()
        self.registry = MetricsRegistry()
        self.router_requests = self.registry.counter(
            "repro_router_requests_total", "Requests routed to shards")
        self.router_errors = self.registry.counter(
            "repro_router_forward_errors_total",
            "Forward attempts that found a dead shard")
        self.shard_respawns = self.registry.counter(
            "repro_shard_respawns_total",
            "Shard processes respawned after death")
        self.replayed_jobs = self.registry.counter(
            "repro_replayed_jobs_total",
            "Undelivered jobs replayed onto a respawned shard")
        self._procs: list[ShardProcess] = []
        #: job_id -> (shard index, raw POST body) for admitted-but-
        #: unfinished submissions; the crash-replay worklist.
        self._ledger: OrderedDict[str, tuple[int, bytes]] = OrderedDict()
        self._lock = threading.Lock()
        self._stop_event = threading.Event()
        self._monitor: threading.Thread | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _shard_config(self, index: int) -> ServiceConfig:
        """Per-shard service config (disjoint cache persistence paths)."""
        if self.config.cache_path is None or self.shards == 1:
            return self.config
        import dataclasses

        return dataclasses.replace(
            self.config, cache_path=f"{self.config.cache_path}.shard{index}"
        )

    def _shard_faults(self, index: int):
        """Per-shard fault schedule: same mix, seed offset by index."""
        if self.fault_config is None:
            return None
        import dataclasses

        return dataclasses.replace(
            self.fault_config, seed=self.fault_config.seed + index
        )

    def start(self) -> "ShardedService":
        """Spawn every shard (concurrently), then start the monitor."""
        if self._procs:
            return self
        procs = [
            ShardProcess(i, self.host, self._shard_config(i), self.verbose,
                         self._shard_faults(i)).spawn()
            for i in range(self.shards)
        ]
        for proc in procs:
            proc.await_port()
        self._procs = procs
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-shard-monitor", daemon=True
        )
        self._monitor.start()
        return self

    def close(self) -> None:
        """Stop the monitor, then drain and stop every shard."""
        self._stop_event.set()
        if self._monitor is not None:
            self._monitor.join(timeout=5)
            self._monitor = None
        procs, self._procs = self._procs, []
        for proc in procs:
            proc.terminate()

    def __enter__(self) -> "ShardedService":
        return self.start()

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # routing + recovery
    # ------------------------------------------------------------------
    def shard_url(self, index: int) -> str:
        return self._procs[index].base_url

    def worker_pids(self) -> list[int | None]:
        return [proc.pid for proc in self._procs]

    def _monitor_loop(self) -> None:
        while not self._stop_event.wait(_MONITOR_INTERVAL):
            for index in range(len(self._procs)):
                if not self._procs[index].alive:
                    self._revive(index)

    def _revive(self, index: int) -> None:
        """Respawn one dead shard and replay its undelivered jobs.

        Serialized under the manager lock so the monitor and a
        forwarding handler that both notice the death respawn once.
        """
        with self._lock:
            proc = self._procs[index]
            if proc.alive:
                return
            proc.terminate(grace_seconds=0.0)  # reap the corpse
            fresh = ShardProcess(
                index, self.host, self._shard_config(index), self.verbose,
                self._shard_faults(index),
            ).spawn()
            fresh.await_port()
            self._procs[index] = fresh
            self.shard_respawns.inc()
            replay = [
                (job_id, body)
                for job_id, (shard, body) in self._ledger.items()
                if shard == index
            ]
        # Replay outside the lock: each re-submission is idempotent
        # (same fingerprint -> same job id -> same tour), so clients
        # polling GET /jobs/<id> find their job again on the new shard.
        for job_id, body in replay:
            try:
                self._http("POST", fresh.base_url + "/solve", body,
                           timeout=30.0)
                self.replayed_jobs.inc()
            except ShardDownError:  # pragma: no cover - died again;
                break               # the monitor will come back around

    def _http(self, method: str, url: str, body: bytes | None = None,
              timeout: float = 30.0) -> tuple[int, dict, bytes]:
        """One forwarded HTTP exchange; shard death -> ShardDownError."""
        request = urllib.request.Request(
            url, data=body, method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return (response.status, dict(response.headers),
                        response.read())
        except urllib.error.HTTPError as exc:
            # The shard answered (4xx/5xx): a response, not a death.
            return exc.code, dict(exc.headers or {}), exc.read()
        except (urllib.error.URLError, ConnectionError, HTTPException,
                TimeoutError) as exc:
            raise ShardDownError(f"shard at {url} unreachable: {exc}") from exc

    def _forward(self, index: int, method: str, path: str,
                 body: bytes | None = None,
                 timeout: float = 30.0) -> tuple[int, dict, bytes]:
        """Forward to one shard, respawning + retrying through deaths."""
        last: ShardDownError | None = None
        for _attempt in range(_FORWARD_ATTEMPTS):
            try:
                return self._http(
                    method, self.shard_url(index) + path, body, timeout
                )
            except ShardDownError as exc:
                last = exc
                self.router_errors.inc()
                self._revive(index)
        raise last  # type: ignore[misc]

    # ------------------------------------------------------------------
    # request paths (transport-agnostic; the HTTP router wraps these)
    # ------------------------------------------------------------------
    def submit_raw(self, raw: bytes) -> tuple[int, dict, bytes]:
        """Route one ``POST /solve`` body; returns (status, headers, body).

        The router computes the fingerprint itself (content addressing
        is cheap and memoized) purely to pick the shard; the shard then
        re-validates on its own admission path.
        """
        self.router_requests.inc()
        try:
            body = json.loads(raw)
            request = build_request(body)
            fingerprint = request.fingerprint()
        except ReproError as exc:
            return 400, {}, json.dumps({"error": str(exc)}).encode()
        except (ValueError, TypeError) as exc:
            return 400, {}, json.dumps(
                {"error": f"invalid request: {exc}"}
            ).encode()
        index = shard_for(fingerprint, self.shards)
        try:
            status, headers, payload = self._forward(
                index, "POST", "/solve", raw
            )
        except ShardDownError as exc:
            return 503, {"Retry-After": "1"}, json.dumps(
                {"error": str(exc)}
            ).encode()
        self._track(job_id_for(fingerprint), index, raw, status, payload)
        return status, headers, payload

    def forward_job(self, job_id: str, query: str) -> tuple[int, dict, bytes]:
        """Route one ``GET /jobs/<id>`` (the id embeds the fingerprint)."""
        self.router_requests.inc()
        try:
            index = shard_for_job(job_id, self.shards)
        except ConfigError as exc:
            return 404, {}, json.dumps({"error": str(exc)}).encode()
        timeout = 30.0
        wait = parse_qs(query).get("wait")
        if wait:
            try:
                # Long-poll forwards need headroom past the shard-side
                # wait; invalid values still go through so the shard's
                # own validation answers with its 400.
                timeout = parse_wait(wait[0]) + 30.0
            except ConfigError:
                pass
        path = f"/jobs/{job_id}" + (f"?{query}" if query else "")
        try:
            status, headers, payload = self._forward(
                index, "GET", path, timeout=timeout
            )
        except ShardDownError as exc:
            return 503, {"Retry-After": "1"}, json.dumps(
                {"error": str(exc)}
            ).encode()
        if status == 200:
            self._settle(job_id, payload)
        return status, headers, payload

    def _track(self, job_id: str, index: int, raw: bytes,
               status: int, payload: bytes) -> None:
        """Ledger admitted-but-unfinished jobs for crash replay."""
        if status != 200:
            return
        try:
            job_status = json.loads(payload).get("status")
        except ValueError:  # pragma: no cover - shard always sends JSON
            return
        with self._lock:
            if job_status in ("queued", "running"):
                self._ledger[job_id] = (index, raw)
                self._ledger.move_to_end(job_id)
                while len(self._ledger) > _LEDGER_LIMIT:
                    self._ledger.popitem(last=False)
            else:
                self._ledger.pop(job_id, None)

    def _settle(self, job_id: str, payload: bytes) -> None:
        try:
            job_status = json.loads(payload).get("status")
        except ValueError:  # pragma: no cover
            return
        if job_status not in ("queued", "running"):
            with self._lock:
                self._ledger.pop(job_id, None)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def _fetch_json(self, index: int, path: str) -> dict | None:
        try:
            status, _headers, payload = self._http(
                "GET", self.shard_url(index) + path, timeout=10.0
            )
        except ShardDownError:
            return None
        if status != 200:
            return None
        try:
            return json.loads(payload)
        except ValueError:  # pragma: no cover
            return None

    def stats(self) -> dict:
        """Fleet ``/stats``: same shape as one service, summed + per-shard."""
        per_shard: list[dict] = []
        payloads: list[dict] = []
        with self._lock:
            ledger_size = len(self._ledger)
        for index in range(self.shards):
            proc = self._procs[index]
            payload = self._fetch_json(index, "/stats")
            per_shard.append({
                "shard": index,
                "alive": proc.alive,
                "port": proc.port,
                "pid": proc.pid,
                "pending": (payload or {}).get("queue", {}).get("pending"),
                "requests": (payload or {}).get("requests", {}).get("requests"),
            })
            if payload is not None:
                payloads.append(payload)
        merged = {
            "uptime_seconds": time.time() - self.started_at,
            "queue": _merge_numeric([p.get("queue", {}) for p in payloads]),
            "requests": _merge_numeric(
                [p.get("requests", {}) for p in payloads]
            ),
            "jobs": _merge_numeric([p.get("jobs", {}) for p in payloads]),
            "cache": _merge_numeric([p.get("cache", {}) for p in payloads]),
            "arena": _merge_numeric([p.get("arena", {}) for p in payloads]),
            "health": {
                "running": bool(payloads) and all(
                    p.get("health", {}).get("running") for p in payloads
                ) and all(entry["alive"] for entry in per_shard),
                "degraded": any(
                    p.get("health", {}).get("degraded") for p in payloads
                ) or any(not entry["alive"] for entry in per_shard),
                "pool_respawns": sum(
                    p.get("health", {}).get("pool_respawns") or 0
                    for p in payloads
                ),
            },
            "shards": {
                "count": self.shards,
                "respawns": self.shard_respawns.value,
                "replayed_jobs": self.replayed_jobs.value,
                "ledger_pending": ledger_size,
                "per_shard": per_shard,
            },
            "router": {
                "requests": self.router_requests.value,
                "forward_errors": self.router_errors.value,
            },
        }
        return merged

    def health(self) -> dict:
        return {
            "status": "ok",
            "uptime_seconds": time.time() - self.started_at,
            "shards": self.shards,
        }

    def ready(self) -> tuple[bool, dict]:
        """Fleet readiness: every shard alive and itself ready."""
        detail = []
        ready = True
        for index in range(self.shards):
            if not self._procs[index].alive:
                detail.append({"shard": index, "ready": False,
                               "reason": "process dead"})
                ready = False
                continue
            payload = self._fetch_json(index, "/readyz")
            shard_ready = bool(payload and payload.get("ready"))
            detail.append({"shard": index, "ready": shard_ready})
            ready = ready and shard_ready
        return ready, {"ready": ready, "shards": detail}

    def metrics_snapshot(self) -> dict:
        """Fleet ``/metrics`` JSON: numeric merge + per-shard snapshots."""
        snapshots = []
        for index in range(self.shards):
            payload = self._fetch_json(index, "/metrics")
            if payload is not None:
                snapshots.append(payload)
        merged: dict = {}
        for snapshot in snapshots:
            for name, value in snapshot.items():
                merged[name] = _merge_metric(merged.get(name), value)
        merged.update(self.registry.snapshot())
        merged["repro_shards"] = self.shards
        merged["per_shard"] = snapshots
        return merged

    def render_prometheus(self) -> str:
        """Fleet Prometheus exposition: shard samples re-labeled."""
        sections: list[str] = []
        seen_headers: set[str] = set()
        for index in range(self.shards):
            try:
                status, _headers, payload = self._http(
                    "GET",
                    self.shard_url(index) + "/metrics?format=prometheus",
                    timeout=10.0,
                )
            except ShardDownError:
                continue
            if status != 200:
                continue
            for line in payload.decode().splitlines():
                if not line.strip():
                    continue
                if line.startswith("#"):
                    if line not in seen_headers:
                        seen_headers.add(line)
                        sections.append(line)
                    continue
                sections.append(_relabel_sample(line, index))
        sections.append(self.registry.render_prometheus().rstrip("\n"))
        return "\n".join(sections) + "\n"


def _merge_numeric(payloads: list[dict]) -> dict:
    """Sum numeric keys across shard dicts; first value wins otherwise."""
    merged: dict = {}
    for payload in payloads:
        for key, value in payload.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                merged.setdefault(key, value)
            elif isinstance(merged.get(key), (int, float)) and not isinstance(
                merged.get(key), bool
            ):
                merged[key] = merged[key] + value
            else:
                merged[key] = value
    return merged


def _merge_metric(current, value):
    """Merge one metric family across shard snapshots.

    Numbers sum; histogram snapshots combine count/sum/min/max (the
    merged mean is recomputed, percentiles are per-shard information
    and stay in ``per_shard``); labeled families merge per label.
    """
    if current is None:
        if isinstance(value, dict) and "count" in value and "sum" in value:
            return _merge_histogram({}, value)
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if isinstance(current, (int, float)) and not isinstance(current, bool):
            return current + value
        return value
    if isinstance(value, dict):
        if "count" in value and "sum" in value:
            return _merge_histogram(current, value)
        merged = dict(current) if isinstance(current, dict) else {}
        for key, inner in value.items():
            merged[key] = _merge_metric(merged.get(key), inner)
        return merged
    return current


def _merge_histogram(current: dict, value: dict) -> dict:
    count = (current.get("count") or 0) + (value.get("count") or 0)
    total = (current.get("sum") or 0.0) + (value.get("sum") or 0.0)
    mins = [v for v in (current.get("min"), value.get("min")) if v is not None]
    maxes = [v for v in (current.get("max"), value.get("max")) if v is not None]
    return {
        "count": count,
        "sum": total,
        "mean": (total / count) if count else None,
        "min": min(mins) if mins else None,
        "max": max(maxes) if maxes else None,
    }


def _relabel_sample(line: str, shard: int) -> str:
    """Inject ``shard="i"`` into one Prometheus sample line."""
    cut = line.rfind(" ")
    if cut <= 0:
        return line
    head, value = line[:cut], line[cut + 1:]
    if head.endswith("}") and "{" in head:
        brace = head.index("{")
        inner = head[brace + 1:-1]
        merged = f'shard="{shard}"' + ("," + inner if inner else "")
        return f"{head[:brace]}{{{merged}}} {value}"
    return f'{head}{{shard="{shard}"}} {value}'


# ----------------------------------------------------------------------
# HTTP router front-end
# ----------------------------------------------------------------------

class RouterHandler(BaseHTTPRequestHandler):
    """The fleet front-end: same endpoints as :class:`ServiceHandler`."""

    server_version = "repro-router/1"
    protocol_version = "HTTP/1.1"
    timeout = 30.0

    def setup(self) -> None:
        self.timeout = getattr(self.server, "request_timeout",
                               type(self).timeout)
        super().setup()

    @property
    def fleet(self) -> ShardedService:
        return self.server.fleet  # type: ignore[attr-defined]

    def do_POST(self) -> None:  # noqa: N802 (http.server naming)
        if urlparse(self.path).path != "/solve":
            self._send_json(404, {"error": f"unknown endpoint {self.path!r}"})
            return
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            self._send_json(400, {"error": "empty request body"})
            return
        raw = self.rfile.read(length)
        status, headers, payload = self.fleet.submit_raw(raw)
        self._send_raw(status, headers, payload)

    def do_GET(self) -> None:  # noqa: N802
        parsed = urlparse(self.path)
        if parsed.path == "/stats":
            self._send_json(200, self.fleet.stats())
            return
        if parsed.path == "/healthz":
            self._send_json(200, self.fleet.health())
            return
        if parsed.path == "/readyz":
            ready, info = self.fleet.ready()
            if ready:
                self._send_json(200, info)
            else:
                self._send_json(503, info, {"Retry-After": "1"})
            return
        if parsed.path == "/metrics":
            query = parse_qs(parsed.query)
            fmt = (query.get("format") or [""])[0].lower()
            accept = self.headers.get("Accept", "")
            if fmt in ("prometheus", "prom", "text") or (
                not fmt and "text/plain" in accept
            ):
                text = self.fleet.render_prometheus().encode()
                self._send_raw(
                    200,
                    {"Content-Type":
                     "text/plain; version=0.0.4; charset=utf-8"},
                    text,
                )
            else:
                self._send_json(200, self.fleet.metrics_snapshot())
            return
        if parsed.path.startswith("/jobs/"):
            job_id = parsed.path[len("/jobs/"):]
            status, headers, payload = self.fleet.forward_job(
                job_id, parsed.query
            )
            self._send_raw(status, headers, payload)
            return
        self._send_json(404, {"error": f"unknown endpoint {parsed.path!r}"})

    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: dict,
                   headers: dict | None = None) -> None:
        data = json.dumps(payload).encode()
        send = dict(headers or {})
        send["Content-Type"] = "application/json"
        self._send_raw(status, send, data)

    def _send_raw(self, status: int, headers: dict, data: bytes) -> None:
        self.send_response(status)
        passthrough = {"Content-Type", "Retry-After"}
        sent_type = False
        for name, value in headers.items():
            if name.title() in passthrough:
                self.send_header(name, value)
                sent_type = sent_type or name.title() == "Content-Type"
        if not sent_type:
            self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def log_message(self, fmt: str, *args) -> None:
        if getattr(self.server, "verbose", False):  # type: ignore[attr-defined]
            super().log_message(fmt, *args)


def make_router_server(
    shards: int,
    config: ServiceConfig | None = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = False,
    fault_config=None,
) -> tuple[ThreadingHTTPServer, ShardedService]:
    """Build (not start) the router + its shard fleet manager."""
    fleet = ShardedService(shards, config, host=host, verbose=verbose,
                           fault_config=fault_config)
    server = ThreadingHTTPServer((host, port), RouterHandler)
    server.fleet = fleet  # type: ignore[attr-defined]
    server.verbose = verbose  # type: ignore[attr-defined]
    server.request_timeout = fleet.config.request_timeout  # type: ignore[attr-defined]
    return server, fleet


def serve_sharded_forever(
    shards: int,
    config: ServiceConfig | None = None,
    host: str = "127.0.0.1",
    port: int = 8080,
    verbose: bool = False,
    fault_config=None,
) -> None:
    """Blocking entry point behind ``repro serve --shards N``."""
    server, fleet = make_router_server(
        shards, config, host, port, verbose, fault_config
    )
    fleet.start()

    def _sigterm(_signum, _frame):
        raise SystemExit(0)

    try:
        signal.signal(signal.SIGTERM, _sigterm)
    except ValueError:  # pragma: no cover - not the main thread
        pass
    bound = server.server_address
    ports = [proc.port for proc in fleet._procs]
    print(f"repro serve: router on http://{bound[0]}:{bound[1]} "
          f"fronting {shards} shard(s) on ports {ports} "
          f"(workers={fleet.config.workers}/shard)", flush=True)
    if fault_config is not None:
        print(f"repro serve: CHAOS ENABLED per shard (base seed "
              f"{fault_config.seed})", flush=True)
    try:
        server.serve_forever()
    except (KeyboardInterrupt, SystemExit):
        pass
    finally:
        server.server_close()
        print("repro serve: draining shards...", flush=True)
        fleet.close()
        print("repro serve: drained; bye", flush=True)
