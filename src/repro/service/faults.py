"""Seeded chaos harness: a deterministic fault schedule for the stack.

The same philosophy the loadgen applies to traffic (PR 6) applied to
*failures*: a :class:`FaultInjector`'s entire fault schedule — which
dispatch kills a pool worker, which task gets slow-solve latency or a
transient exception, and by how much — is precomputed from one seed at
construction.  Two injectors built from equal configs carry identical
schedules (assert via :meth:`FaultInjector.schedule_digest`), so a
chaos run is a repeatable experiment, not a dice roll.

What *is* timing-dependent is consumption order: under concurrency,
which real task draws fault slot ``k`` depends on thread scheduling —
exactly like the loadgen's completion order.  The schedule (and its
digest) is pinned; the pairing is not.  Engine determinism closes the
loop regardless: a killed or retried task replays with its original
seed, so final tours are bit-identical to an uninjected run.

Injection points:

* :meth:`on_dispatch` — called by the service queue before each group
  dispatch; scheduled kill slots SIGKILL one live pool worker (the
  recovery driver then respawns + replays);
* :meth:`on_task` — called parent-side per task (the recovery
  driver's ``before_task`` hook) and usable as the engine's
  :func:`~repro.engine.runner.set_task_hook`; scheduled slots sleep
  (slow-solve) or raise :class:`~repro.errors.TransientError`;
* :meth:`corrupt_cache_file` — truncates a cache persistence file
  mid-bytes, for exercising the quarantine path in tests.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import signal
import threading
import time
from dataclasses import asdict, dataclass

import numpy as np

from repro.errors import ConfigError, TransientError


@dataclass(frozen=True)
class FaultConfig:
    """Shape of one seeded fault schedule.

    ``horizon`` is the schedule length; consumers wrap around beyond
    it, so long runs see the same fault *mix* without unbounded
    precomputation.
    """

    seed: int = 7
    horizon: int = 512
    kill_rate: float = 0.08
    slow_rate: float = 0.10
    slow_seconds: float = 0.25
    transient_rate: float = 0.05

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ConfigError(f"seed must be >= 0, got {self.seed}")
        if self.horizon < 1:
            raise ConfigError(f"horizon must be >= 1, got {self.horizon}")
        for name in ("kill_rate", "slow_rate", "transient_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.slow_rate + self.transient_rate > 1.0:
            raise ConfigError(
                "slow_rate + transient_rate must be <= 1, got "
                f"{self.slow_rate + self.transient_rate}"
            )
        if self.slow_seconds < 0:
            raise ConfigError(
                f"slow_seconds must be >= 0, got {self.slow_seconds}"
            )


class FaultInjector:
    """Precomputed, seed-pinned fault decision tables + live counters."""

    def __init__(self, config: FaultConfig | None = None) -> None:
        self.config = config or FaultConfig()
        rng = np.random.default_rng(self.config.seed)
        # Per-task slots: ("none"|"slow"|"transient", slow_delay).
        task_faults: list[tuple[str, float]] = []
        for _ in range(self.config.horizon):
            roll = float(rng.random())
            if roll < self.config.transient_rate:
                task_faults.append(("transient", 0.0))
            elif roll < self.config.transient_rate + self.config.slow_rate:
                delay = float(rng.random()) * self.config.slow_seconds
                task_faults.append(("slow", round(delay, 6)))
            else:
                task_faults.append(("none", 0.0))
        self.task_faults = tuple(task_faults)
        self.kill_slots = tuple(
            bool(float(rng.random()) < self.config.kill_rate)
            for _ in range(self.config.horizon)
        )
        self._task_ordinal = itertools.count()
        self._dispatch_ordinal = itertools.count()
        self._lock = threading.Lock()
        self._counters = {
            "tasks_seen": 0, "dispatches_seen": 0, "slow_injected": 0,
            "transient_injected": 0, "kills_injected": 0, "kills_skipped": 0,
        }

    # ------------------------------------------------------------------
    def schedule_digest(self) -> str:
        """Content hash of the whole fault schedule (config included)."""
        payload = json.dumps(
            {
                "config": asdict(self.config),
                "task_faults": list(self.task_faults),
                "kill_slots": list(self.kill_slots),
            },
            sort_keys=True, separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def stats(self) -> dict:
        with self._lock:
            return dict(self._counters)

    def _count(self, key: str) -> None:
        with self._lock:
            self._counters[key] += 1

    # ------------------------------------------------------------------
    # injection points
    # ------------------------------------------------------------------
    def on_task(self, _task) -> None:
        """Per-task hook: sleep (slow slot) or raise (transient slot)."""
        ordinal = next(self._task_ordinal)
        self._count("tasks_seen")
        kind, delay = self.task_faults[ordinal % self.config.horizon]
        if kind == "slow":
            self._count("slow_injected")
            time.sleep(delay)
        elif kind == "transient":
            self._count("transient_injected")
            raise TransientError(
                f"injected transient fault (schedule slot "
                f"{ordinal % self.config.horizon})"
            )

    def on_dispatch(self, pool) -> None:
        """Per-dispatch hook: SIGKILL one live pool worker on kill slots.

        ``pool`` is anything exposing ``worker_pids()`` (the service's
        :class:`~repro.engine.wavefront.WavefrontPool`).  Slots where
        no worker is alive (workers=1 inline mode, pool not started
        yet) count as skipped, not injected.
        """
        ordinal = next(self._dispatch_ordinal)
        self._count("dispatches_seen")
        if not self.kill_slots[ordinal % self.config.horizon]:
            return
        if self.kill_worker(pool):
            self._count("kills_injected")
        else:
            self._count("kills_skipped")

    @staticmethod
    def kill_worker(pool) -> bool:
        """Kill the lowest-pid live worker of ``pool``; False if none."""
        pids = pool.worker_pids()
        if not pids:
            return False
        try:
            os.kill(pids[0], signal.SIGKILL)
        except (OSError, AttributeError):  # already gone / no SIGKILL
            return False
        return True

    def corrupt_cache_file(self, path: str) -> bool:
        """Truncate a cache persistence file mid-byte (quarantine bait)."""
        try:
            size = os.path.getsize(path)
            with open(path, "r+b") as stream:
                stream.truncate(max(1, size // 2))
        except OSError:
            return False
        return True
