"""Canonical solve fingerprints for content-addressed result caching.

A fingerprint names one *deterministic* solve: the instance content
(coordinate or matrix bytes plus metric — never the display name), the
registered solver, a canonicalized parameter set, and an explicit
integer seed.  Two requests with equal fingerprints are guaranteed to
produce bit-identical tours, which is what lets the service return a
cached result in place of a solve.

Determinism is enforced at this boundary, not assumed:

* ``seed=None`` is rejected with :class:`~repro.errors.ConfigError` —
  OS-entropy solves must never enter a content-addressed cache;
* parameter values must be canonical JSON scalars (str/int/float/bool/
  None, finite floats only), so the serialized key is unique and
  stable across processes;
* the parameter set is validated against the solver's factory up
  front, so a bad request fails at admission rather than inside a
  worker.
"""

from __future__ import annotations

import hashlib
import json
import math

import numpy as np

from repro.engine.arena import content_key
from repro.engine.registry import get_solver
from repro.errors import ConfigError
from repro.tsp.instance import TSPInstance

#: Fingerprint schema version; bump when the digest recipe changes so
#: persisted caches from older recipes can never serve wrong results.
FINGERPRINT_SCHEMA = "repro-solve/1"


def canonical_seed(seed: object) -> int:
    """Coerce ``seed`` to a plain int; ``None``/non-integers are rejected.

    ``None`` means "draw OS entropy" everywhere else in the library —
    a legitimate request for a one-shot experiment, but poison for a
    content-addressed cache or a golden fixture, where the key must
    fully determine the result.
    """
    if seed is None:
        raise ConfigError(
            "seed=None is nondeterministic and cannot be fingerprinted; "
            "pass an explicit integer seed"
        )
    if isinstance(seed, bool) or not isinstance(seed, (int, np.integer)):
        raise ConfigError(
            f"seed must be an integer, got {type(seed).__name__} ({seed!r})"
        )
    return int(seed)


def canonical_params(params: dict | None) -> tuple[tuple[str, object], ...]:
    """Sorted, canonicalized solver parameters.

    Every value must be a JSON scalar; floats must be finite (NaN/inf
    compare unequal to themselves, so they can never form a stable
    key).  ``seed`` is owned by the request, never by the params.
    """
    canonical = []
    for key, value in sorted((params or {}).items()):
        if not isinstance(key, str):
            raise ConfigError(f"parameter names must be strings, got {key!r}")
        if key == "seed":
            raise ConfigError(
                "'seed' is owned by the solve request, not the parameter "
                "set; pass it as the request seed"
            )
        if isinstance(value, (np.integer,)):
            value = int(value)
        elif isinstance(value, (np.floating,)):
            value = float(value)
        if isinstance(value, float) and not math.isfinite(value):
            raise ConfigError(
                f"parameter {key!r} is non-finite ({value!r}); "
                "non-finite values have no canonical form"
            )
        if value is not None and not isinstance(value, (str, int, float, bool)):
            raise ConfigError(
                f"parameter {key!r} has non-canonical type "
                f"{type(value).__name__}; fingerprinted configs accept "
                "only str/int/float/bool/None"
            )
        canonical.append((key, value))
    return tuple(canonical)


def _digest_value(value: object) -> object:
    """Fold numerically-equal spellings to one serialized form.

    Canonical param tuples compare with Python ``==``, under which
    ``False == 0`` and ``2.0 == 2`` — but ``json.dumps`` spells each
    differently, which would give equal param sets distinct digests.
    Booleans and integer-valued floats (including ``-0.0``) therefore
    serialize as plain ints; values that are ``==``-distinct are never
    folded together, so injectivity over canonical sets is preserved.
    """
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, float) and value.is_integer():
        return int(value)
    return value


def instance_digest(instance: TSPInstance) -> str:
    """Content hash of the instance geometry (name-independent).

    Two instances with identical coordinates and metric share a digest
    whatever they are called — the solver only ever sees the geometry.
    Delegates to the arena's :func:`~repro.engine.arena.content_key` so
    shared-memory blocks and solve fingerprints can never disagree
    about instance identity.
    """
    return content_key(instance)


def solve_fingerprint(
    instance: TSPInstance,
    solver: str,
    params: dict | None,
    seed: object,
) -> str:
    """The content-addressed key of one deterministic solve."""
    spec = get_solver(solver)  # unknown solver names raise ConfigError
    canonical = canonical_params(params)
    unknown = {key for key, _ in canonical} - set(spec.accepted_params())
    if unknown:
        raise ConfigError(
            f"solver {solver!r} does not accept parameter(s) "
            f"{sorted(unknown)}; accepted: {sorted(spec.accepted_params())}"
        )
    payload = json.dumps(
        {
            "schema": FINGERPRINT_SCHEMA,
            "instance": instance_digest(instance),
            "solver": solver,
            "params": [(key, _digest_value(value)) for key, value in canonical],
            "seed": canonical_seed(seed),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode()).hexdigest()
