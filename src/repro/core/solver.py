"""TAXISolver: the end-to-end public API."""

from __future__ import annotations

import time

import numpy as np

from repro.clustering.agglomerative import cluster_with_max_size
from repro.clustering.cache import SubmatrixCache
from repro.clustering.hierarchy import build_hierarchy
from repro.clustering.kmeans import kmeans_with_max_size
from repro.core.config import TAXIConfig
from repro.core.pipeline import solve_hierarchical, solve_hierarchical_replicas
from repro.core.result import TAXIResult
from repro.errors import SolverError
from repro.kernels import BACKEND_REFERENCE, resolve_backend
from repro.macro.batch import BatchedMacroSolver
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import Tour
from repro.utils.rng import ensure_rng


class TAXISolver:
    """Hierarchical-clustering + Ising-macro TSP solver (the paper's system).

    Usage::

        result = TAXISolver(TAXIConfig(seed=0)).solve(instance)
        result.tour.length, result.phase_seconds.as_dict()

    The solver is deterministic for a given (config, instance) pair.
    """

    def __init__(self, config: TAXIConfig | None = None) -> None:
        self.config = config if config is not None else TAXIConfig()

    def solve(self, instance: TSPInstance, executor=None) -> TAXIResult:
        """Solve ``instance`` and return the tour with phase statistics.

        ``executor`` optionally overrides the wavefront pool implied by
        ``config.workers`` (tests inject thread/inline executors).
        """
        config = self.config
        if instance.n <= 3:
            # Degenerate: any permutation is optimal.
            tour = Tour(instance, np.arange(instance.n))
            from repro.core.result import PhaseTimes

            return TAXIResult(
                tour=tour,
                phase_seconds=PhaseTimes(),
                hierarchy_depth=1,
                max_cluster_size=config.max_cluster_size,
                bits=config.bits,
            )
        if instance.coords is None:
            raise SolverError(
                "TAXI requires coordinate instances (clustering operates "
                "on city coordinates)"
            )
        rng = ensure_rng(config.seed)

        cluster_seed = int(rng.integers(0, 2**31 - 1))
        if config.clustering == "ward":
            cluster_fn = cluster_with_max_size
        else:
            def cluster_fn(points: np.ndarray, max_size: int) -> np.ndarray:
                return kmeans_with_max_size(points, max_size, seed=cluster_seed)

        start = time.perf_counter()
        hierarchy = build_hierarchy(
            instance, config.max_cluster_size, cluster_fn
        )
        clustering_seconds = time.perf_counter() - start

        macro_solver = BatchedMacroSolver(
            config.macro_config(), seed=rng, backend=config.backend
        )
        order, times, level_stats = solve_hierarchical(
            hierarchy,
            macro_solver,
            config.schedule(),
            endpoint_fixing=config.endpoint_fixing,
            workers=config.workers,
            executor=executor,
            chunk_size=config.chunk_size,
        )
        times.clustering = clustering_seconds

        tour = Tour(instance, order, closed=True)
        return TAXIResult(
            tour=tour,
            phase_seconds=times,
            level_stats=level_stats,
            hierarchy_depth=hierarchy.depth,
            max_cluster_size=config.max_cluster_size,
            bits=config.bits,
        )


def _degenerate_result(instance: TSPInstance, config: TAXIConfig) -> TAXIResult:
    from repro.core.result import PhaseTimes

    return TAXIResult(
        tour=Tour(instance, np.arange(instance.n)),
        phase_seconds=PhaseTimes(),
        hierarchy_depth=1,
        max_cluster_size=config.max_cluster_size,
        bits=config.bits,
    )


def solve_taxi_replicas(
    instance: TSPInstance,
    config: TAXIConfig,
    seeds: list[int],
) -> list[TAXIResult] | None:
    """Solve one instance for many replica seeds in lock-step.

    Each seed gets the result ``TAXISolver(replace(config,
    seed=seed)).solve(instance)`` would produce, bit-for-bit, but the
    replicas share one ward hierarchy, one distance-submatrix cache,
    and — the actual speedup — merged lock-step annealing batches (R
    replicas x C same-shape clusters per kernel call; see
    :func:`repro.core.pipeline.solve_hierarchical_replicas`).

    Returns ``None`` when lock-step does not apply and the caller
    should fall back to per-replica solves:

    * ``clustering="kmeans"`` — the cluster seed differs per replica,
      so the hierarchies diverge and cannot share macro batches;
    * ``backend="reference"`` — the historical per-position RNG stream
      cannot be block-drawn, so merging would change results.
    """
    if config.clustering != "ward":
        return None
    if resolve_backend(config.backend) == BACKEND_REFERENCE:
        return None
    if instance.n <= 3:
        return [_degenerate_result(instance, config) for _ in seeds]
    if instance.coords is None:
        raise SolverError(
            "TAXI requires coordinate instances (clustering operates "
            "on city coordinates)"
        )
    rngs = [ensure_rng(seed) for seed in seeds]
    for rng in rngs:
        # Solo draw #1 is the cluster seed; ward ignores it but the
        # draw must happen to keep the stream aligned.
        int(rng.integers(0, 2**31 - 1))

    start = time.perf_counter()
    hierarchy = build_hierarchy(
        instance, config.max_cluster_size, cluster_with_max_size
    )
    clustering_seconds = time.perf_counter() - start

    solvers = [
        BatchedMacroSolver(config.macro_config(), seed=rng, backend=config.backend)
        for rng in rngs
    ]
    cache = SubmatrixCache(instance)
    results = solve_hierarchical_replicas(
        hierarchy,
        solvers,
        config.schedule(),
        endpoint_fixing=config.endpoint_fixing,
        chunk_size=config.chunk_size,
        cache=cache,
    )
    out: list[TAXIResult] = []
    for order, times, level_stats in results:
        times.clustering = clustering_seconds / len(seeds)
        out.append(
            TAXIResult(
                tour=Tour(instance, order, closed=True),
                phase_seconds=times,
                level_stats=level_stats,
                hierarchy_depth=hierarchy.depth,
                max_cluster_size=config.max_cluster_size,
                bits=config.bits,
            )
        )
    return out
