"""TAXISolver: the end-to-end public API."""

from __future__ import annotations

import time

import numpy as np

from repro.clustering.agglomerative import cluster_with_max_size
from repro.clustering.hierarchy import build_hierarchy
from repro.clustering.kmeans import kmeans_with_max_size
from repro.core.config import TAXIConfig
from repro.core.pipeline import solve_hierarchical
from repro.core.result import TAXIResult
from repro.errors import SolverError
from repro.macro.batch import BatchedMacroSolver
from repro.tsp.instance import TSPInstance
from repro.tsp.tour import Tour
from repro.utils.rng import ensure_rng


class TAXISolver:
    """Hierarchical-clustering + Ising-macro TSP solver (the paper's system).

    Usage::

        result = TAXISolver(TAXIConfig(seed=0)).solve(instance)
        result.tour.length, result.phase_seconds.as_dict()

    The solver is deterministic for a given (config, instance) pair.
    """

    def __init__(self, config: TAXIConfig | None = None) -> None:
        self.config = config if config is not None else TAXIConfig()

    def solve(self, instance: TSPInstance, executor=None) -> TAXIResult:
        """Solve ``instance`` and return the tour with phase statistics.

        ``executor`` optionally overrides the wavefront pool implied by
        ``config.workers`` (tests inject thread/inline executors).
        """
        config = self.config
        if instance.n <= 3:
            # Degenerate: any permutation is optimal.
            tour = Tour(instance, np.arange(instance.n))
            from repro.core.result import PhaseTimes

            return TAXIResult(
                tour=tour,
                phase_seconds=PhaseTimes(),
                hierarchy_depth=1,
                max_cluster_size=config.max_cluster_size,
                bits=config.bits,
            )
        if instance.coords is None:
            raise SolverError(
                "TAXI requires coordinate instances (clustering operates "
                "on city coordinates)"
            )
        rng = ensure_rng(config.seed)

        cluster_seed = int(rng.integers(0, 2**31 - 1))
        if config.clustering == "ward":
            cluster_fn = cluster_with_max_size
        else:
            def cluster_fn(points: np.ndarray, max_size: int) -> np.ndarray:
                return kmeans_with_max_size(points, max_size, seed=cluster_seed)

        start = time.perf_counter()
        hierarchy = build_hierarchy(
            instance, config.max_cluster_size, cluster_fn
        )
        clustering_seconds = time.perf_counter() - start

        macro_solver = BatchedMacroSolver(
            config.macro_config(), seed=rng, backend=config.backend
        )
        order, times, level_stats = solve_hierarchical(
            hierarchy,
            macro_solver,
            config.schedule(),
            endpoint_fixing=config.endpoint_fixing,
            workers=config.workers,
            executor=executor,
            chunk_size=config.chunk_size,
        )
        times.clustering = clustering_seconds

        tour = Tour(instance, order, closed=True)
        return TAXIResult(
            tour=tour,
            phase_seconds=times,
            level_stats=level_stats,
            hierarchy_depth=hierarchy.depth,
            max_cluster_size=config.max_cluster_size,
            bits=config.bits,
        )
