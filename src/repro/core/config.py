"""End-to-end TAXI solver configuration."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.kernels import resolve_backend
from repro.macro.config import MacroConfig
from repro.macro.schedule import AnnealSchedule, paper_schedule
from repro.xbar.crossbar import CrossbarConfig


@dataclass(frozen=True)
class TAXIConfig:
    """Configuration of the full hierarchical solver.

    Parameters
    ----------
    max_cluster_size:
        Ising macro capacity; the paper's Fig 5a sweeps {12, 14, 16,
        18, 20} and settles on 12.
    bits:
        W_D bit precision (Fig 5b evaluates 2/3/4; 4 is the headline).
    sweeps:
        Annealing sweeps per sub-problem.  ``None`` uses the paper's
        exact 50 nA ramp (1341 sweeps); smaller values keep the same
        ramp endpoints with a coarser step.
    clustering:
        ``"ward"`` (the paper's agglomerative choice) or ``"kmeans"``
        (the baselines'; exposed for the E9 ablation).
    endpoint_fixing:
        Fix inter-cluster entry/exit cities before solving clusters
        (Section IV-2).  Disabling reverts to free sub-tours joined at
        centroid-nearest cities — the ablation case.
    crossbar:
        Electrical model shared by every macro.
    guarded_updates, wta_resolution:
        Forwarded to :class:`~repro.macro.config.MacroConfig`.
    seed:
        Master seed for every stochastic component.
    backend:
        Kernel backend for the macro annealing sweeps (``auto`` |
        ``fast`` | ``reference``; see :mod:`repro.kernels`).
    workers:
        Wavefront process-pool width for the hierarchical pipeline's
        per-level sub-problem batches.  ``1`` (default) solves chunks
        inline; any width yields bit-identical tours (chunks are
        deterministically cut and self-seeded).
    chunk_size:
        Sub-problems per wavefront dispatch chunk.  Part of the solve's
        deterministic identity (chunk ordinals feed the per-chunk
        seeds), so it is configuration, not a per-run tuning knob.
    """

    max_cluster_size: int = 12
    bits: int = 4
    sweeps: int | None = None
    clustering: str = "ward"
    endpoint_fixing: bool = True
    crossbar: CrossbarConfig = field(default_factory=CrossbarConfig)
    guarded_updates: bool = True
    wta_resolution: float = 1e-3
    seed: int | None = 0
    backend: str = "auto"
    workers: int = 1
    chunk_size: int = 8

    def __post_init__(self) -> None:
        resolve_backend(self.backend)  # validate early: bad names raise
        if self.max_cluster_size < 4:
            raise ConfigError(
                f"max_cluster_size must be >= 4, got {self.max_cluster_size}"
            )
        if not 1 <= self.bits <= 8:
            raise ConfigError(f"bits must be in 1..8, got {self.bits}")
        if self.sweeps is not None and self.sweeps < 2:
            raise ConfigError(f"sweeps must be >= 2, got {self.sweeps}")
        if self.clustering not in ("ward", "kmeans"):
            raise ConfigError(
                f"clustering must be 'ward' or 'kmeans', got {self.clustering!r}"
            )
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size < 1:
            raise ConfigError(f"chunk_size must be >= 1, got {self.chunk_size}")

    def macro_config(self) -> MacroConfig:
        """The per-macro configuration implied by this solver config."""
        return MacroConfig(
            max_cities=self.max_cluster_size,
            bits=self.bits,
            crossbar=self.crossbar,
            wta_resolution=self.wta_resolution,
            guarded_updates=self.guarded_updates,
        )

    def schedule(self) -> AnnealSchedule:
        """The annealing schedule implied by this solver config."""
        return paper_schedule(self.sweeps)


@dataclass(frozen=True)
class EngineConfig:
    """Configuration of the multi-replica execution engine.

    Parameters
    ----------
    replicas:
        Independent seeded solver starts per instance; the engine
        reports best-of / percentile aggregates over them.
    workers:
        Process-pool width.  ``None`` picks ``min(replicas, cpu_count)``;
        ``1`` runs serially in-process (bit-identical to any parallel
        run thanks to pre-derived replica seeds).
    seed:
        Master seed; per-replica seeds are derived deterministically
        via :func:`repro.utils.rng.replica_seeds`.
    replica_batch:
        Replica lock-step batching mode (see
        :mod:`repro.engine.replica_batch`).  ``"auto"`` engages only
        when the job runs a lock-step capable solver on the ``array``
        backend; ``"on"`` forces it (raising on incompatible jobs);
        ``"off"`` always uses per-replica dispatch.  Tours are
        bit-identical either way.
    """

    replicas: int = 4
    workers: int | None = None
    seed: int | None = 0
    replica_batch: str = "auto"

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ConfigError(f"replicas must be >= 1, got {self.replicas}")
        if self.workers is not None and self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.replica_batch not in ("auto", "on", "off"):
            raise ConfigError(
                f"replica_batch must be 'auto', 'on', or 'off', "
                f"got {self.replica_batch!r}"
            )

    def resolved_workers(self, task_count: int | None = None) -> int:
        """The actual pool width for ``task_count`` pending tasks."""
        import os

        width = self.workers if self.workers is not None else (os.cpu_count() or 1)
        if task_count is not None:
            width = min(width, task_count)
        return max(1, width)


@dataclass(frozen=True)
class ServiceConfig:
    """Configuration of the solve-as-a-service layer.

    Parameters
    ----------
    queue_depth:
        Maximum requests admitted but not yet dispatched; further
        submissions are refused with :class:`ServiceError` (backpressure
        instead of unbounded memory).
    batch_window:
        Seconds the dispatcher waits after the first queued request to
        micro-batch more compatible requests into one engine job.
        ``0`` still coalesces whatever is already queued.
    max_batch:
        Upper bound on requests grouped into one dispatch.
    cache_size:
        Result-cache capacity in entries (LRU eviction beyond it).
    cache_path:
        Optional JSON file for cache persistence: loaded at startup,
        written on shutdown/save.  ``None`` keeps the cache in memory
        only.
    job_history:
        Maximum finished (done/failed) jobs retained for ``GET
        /jobs/<id>``; the oldest are dropped beyond it so a long-lived
        process cannot grow without bound.  Queued/running jobs are
        never evicted.
    workers:
        Process-pool width for dispatched solve batches.  ``1`` solves
        inline in the dispatcher thread; results are bit-identical at
        any width (requests carry explicit seeds).
    default_deadline:
        Deadline in seconds applied to requests that don't carry their
        own ``deadline_seconds``.  ``None`` (default) means no
        deadline.  Expired jobs finish with status ``"expired"``.
    max_retries:
        Per-dispatch recovery budget: bounds both pool respawns after
        worker crashes and transient task retries (see
        :class:`~repro.engine.recovery.RetryPolicy`).
    retry_backoff:
        Base backoff in seconds before the first retry (exponential
        with deterministic jitter thereafter).
    shed_retry_after:
        ``Retry-After`` seconds advertised when the service sheds load
        (HTTP 503) because the pool is degraded/respawning.
    arena:
        Shared-memory instance arena mode (``"auto"`` | ``"on"`` |
        ``"off"``).  When active, dispatched tasks carry a content-
        addressed :class:`~repro.engine.arena.ArenaRef` instead of
        pickled instance payloads, and pool workers attach coordinate/
        matrix blocks read-only.  ``"auto"`` engages the arena only
        when ``workers > 1`` (with one inline worker there is no
        process boundary to avoid copying across).
    request_timeout:
        Socket timeout in seconds applied to each HTTP connection, so
        a stalled or half-open client releases its handler thread
        instead of pinning it forever.
    warm_start:
        Near-match warm-start tier mode (``"on"`` | ``"off"``).  When
        on, a portfolio solve that misses the result cache may seed its
        annealing arms from the cached tour of a geometrically similar
        instance; the result carries ``warm_start: <source_fp16>``
        provenance.
    warm_threshold:
        Minimum locality-signature similarity (``0..1``) for a cached
        tour to qualify as a warm-start source.
    trajectory_dir:
        Directory scanned for ``BENCH_*``/``LOADTEST_*`` payloads that
        tune portfolio arm cost estimates.  ``None`` (default) uses the
        static cost table — fully deterministic with no external state.
    """

    queue_depth: int = 64
    batch_window: float = 0.02
    max_batch: int = 16
    cache_size: int = 256
    cache_path: str | None = None
    job_history: int = 1024
    workers: int = 1
    default_deadline: float | None = None
    max_retries: int = 3
    retry_backoff: float = 0.05
    shed_retry_after: float = 0.5
    arena: str = "auto"
    request_timeout: float = 30.0
    warm_start: str = "on"
    warm_threshold: float = 0.9
    trajectory_dir: str | None = None

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ConfigError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.job_history < 1:
            raise ConfigError(
                f"job_history must be >= 1, got {self.job_history}"
            )
        if self.batch_window < 0:
            raise ConfigError(
                f"batch_window must be >= 0, got {self.batch_window}"
            )
        if self.max_batch < 1:
            raise ConfigError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.cache_size < 1:
            raise ConfigError(f"cache_size must be >= 1, got {self.cache_size}")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ConfigError(
                f"default_deadline must be > 0, got {self.default_deadline}"
            )
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_backoff < 0:
            raise ConfigError(
                f"retry_backoff must be >= 0, got {self.retry_backoff}"
            )
        if self.shed_retry_after <= 0:
            raise ConfigError(
                f"shed_retry_after must be > 0, got {self.shed_retry_after}"
            )
        if self.arena not in ("auto", "on", "off"):
            raise ConfigError(
                f"arena must be 'auto', 'on', or 'off', got {self.arena!r}"
            )
        if self.request_timeout <= 0:
            raise ConfigError(
                f"request_timeout must be > 0, got {self.request_timeout}"
            )
        if self.warm_start not in ("on", "off"):
            raise ConfigError(
                f"warm_start must be 'on' or 'off', got {self.warm_start!r}"
            )
        if not 0.0 < self.warm_threshold <= 1.0:
            raise ConfigError(
                f"warm_threshold must be in (0, 1], got {self.warm_threshold}"
            )

    def warm_start_enabled(self) -> bool:
        """Whether portfolio misses may seed from near-match cached tours."""
        return self.warm_start == "on"

    def arena_enabled(self) -> bool:
        """Whether dispatches should publish to the instance arena."""
        if self.arena == "on":
            return True
        if self.arena == "off":
            return False
        return self.workers > 1


@dataclass(frozen=True)
class LoadgenConfig:
    """Configuration of one seeded load-test run (``repro loadtest``).

    Parameters
    ----------
    instances:
        Instance tokens (everything ``repro batch --instances`` takes)
        that cold requests draw from, uniformly under the run seed.
        ``scenario:<name>`` entries expand to that registered workload
        scenario's token list (:mod:`repro.tsp.scenarios`).
    requests:
        Total requests in the schedule.
    concurrency:
        Closed-loop worker count (in-flight ceiling).
    warm_ratio:
        Probability that a scheduled request repeats the fingerprint of
        an earlier cold request (a guaranteed cache hit) instead of
        opening a fresh one.  The schedule — not thread timing —
        decides the cold/warm split, so two runs with one seed report
        identical cache hit/miss totals.
    mode:
        ``"closed"`` (each worker issues its next request as soon as
        the previous completes) or ``"open"`` (requests are released at
        seeded Poisson arrival times regardless of completions — the
        saturation-probe mode).
    rate:
        Mean arrivals per second for ``mode="open"``.
    solver, params:
        Solver configuration shared by every scheduled request
        (``params`` canonical per the service fingerprint rules).
    seed:
        Master seed: fully determines the schedule (tokens, cold
        seeds, warm references, arrival times).
    timeout:
        Per-request completion timeout in seconds.
    deadline:
        Optional per-request ``deadline_seconds`` attached to every
        scheduled request (server-side enforcement; ``None`` sends
        none).
    max_retries:
        Client-side retry budget for shed responses (503/``ShedError``)
        — the loadgen backs off by the advertised ``Retry-After`` and
        re-issues, so a brief degraded window costs latency, not
        failed requests.
    chaos:
        Enable the seeded fault injector for in-process runs (worker
        kills, slow-solve latency, transient task faults).  Against an
        HTTP driver the flag only annotates the report — inject on the
        server via ``repro serve --chaos-seed``.
    chaos_seed:
        Seed of the fault schedule; ``None`` reuses the run seed.  Two
        runs with equal chaos config produce identical fault schedules
        (assert via the injector's ``schedule_digest``).
    chaos_kill_rate, chaos_slow_rate, chaos_transient_rate:
        Per-slot probabilities of each fault class in the precomputed
        schedule.
    chaos_slow_seconds:
        Upper bound of injected solve latency (per-slot values are
        seeded draws in ``[0, chaos_slow_seconds]``).
    shards:
        Shard count for the sharded serving mode: ``repro loadtest
        --shards N`` spins up N single-service shard processes and
        routes each request by its fingerprint (client-side, same
        :func:`~repro.service.shards.shard_for` function the router
        uses).  ``1`` (default) keeps the classic single-service path.
        The schedule itself is shard-count independent, so reports are
        comparable across shard counts.
    open_loop_threads:
        Issuing-pool ceiling for ``mode="open"``: scheduled arrivals are
        dispatched by this many pooled threads instead of one parked
        thread per request (which collapses at ``--requests 5000``).
        Arrivals beyond the pool's instantaneous capacity queue and are
        reported honestly through ``max_arrival_lag_seconds``.
    """

    instances: tuple[str, ...] = ("101",)
    requests: int = 100
    concurrency: int = 8
    warm_ratio: float = 0.5
    mode: str = "closed"
    rate: float = 50.0
    solver: str = "taxi"
    params: tuple[tuple[str, object], ...] = (("sweeps", 30),)
    seed: int = 0
    timeout: float = 300.0
    deadline: float | None = None
    max_retries: int = 3
    chaos: bool = False
    chaos_seed: int | None = None
    chaos_kill_rate: float = 0.08
    chaos_slow_rate: float = 0.10
    chaos_transient_rate: float = 0.05
    chaos_slow_seconds: float = 0.25
    shards: int = 1
    open_loop_threads: int = 128

    def __post_init__(self) -> None:
        if not self.instances:
            raise ConfigError("loadgen needs at least one instance token")
        if self.requests < 1:
            raise ConfigError(f"requests must be >= 1, got {self.requests}")
        if self.concurrency < 1:
            raise ConfigError(
                f"concurrency must be >= 1, got {self.concurrency}"
            )
        if not 0.0 <= self.warm_ratio <= 1.0:
            raise ConfigError(
                f"warm_ratio must be in [0, 1], got {self.warm_ratio}"
            )
        if self.mode not in ("closed", "open"):
            raise ConfigError(
                f"mode must be 'closed' or 'open', got {self.mode!r}"
            )
        if self.rate <= 0:
            raise ConfigError(f"rate must be > 0, got {self.rate}")
        if self.timeout <= 0:
            raise ConfigError(f"timeout must be > 0, got {self.timeout}")
        if self.deadline is not None and self.deadline <= 0:
            raise ConfigError(f"deadline must be > 0, got {self.deadline}")
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        for name in ("chaos_kill_rate", "chaos_slow_rate",
                     "chaos_transient_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.chaos_slow_seconds < 0:
            raise ConfigError(
                f"chaos_slow_seconds must be >= 0, got {self.chaos_slow_seconds}"
            )
        if self.chaos_seed is not None and self.chaos_seed < 0:
            raise ConfigError(
                f"chaos_seed must be >= 0, got {self.chaos_seed}"
            )
        if self.shards < 1:
            raise ConfigError(f"shards must be >= 1, got {self.shards}")
        if self.open_loop_threads < 1:
            raise ConfigError(
                f"open_loop_threads must be >= 1, got {self.open_loop_threads}"
            )

    def params_dict(self) -> dict:
        return dict(self.params)
