"""TAXI's public end-to-end solver API (the paper's primary contribution).

Typical use::

    from repro.core import TAXIConfig, TAXISolver
    from repro.tsp import load_benchmark

    instance = load_benchmark(1060)
    result = TAXISolver(TAXIConfig(max_cluster_size=12, bits=4, seed=0)).solve(instance)
    print(result.tour.length, result.phase_seconds)
"""

from repro.core.config import EngineConfig, ServiceConfig, TAXIConfig
from repro.core.result import (
    BatchResult,
    LevelStats,
    PhaseTimes,
    ReplicaResult,
    TAXIResult,
)
from repro.core.solver import TAXISolver
from repro.core.pipeline import solve_hierarchical

__all__ = [
    "TAXIConfig",
    "EngineConfig",
    "ServiceConfig",
    "TAXISolver",
    "TAXIResult",
    "BatchResult",
    "ReplicaResult",
    "PhaseTimes",
    "LevelStats",
    "solve_hierarchical",
]
