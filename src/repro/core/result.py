"""Solve results: tour, phase timing, per-level statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.tsp.tour import Tour


@dataclass
class PhaseTimes:
    """Wall-clock seconds per pipeline phase (the Fig 6b breakdown).

    ``clustering`` and ``fixing`` run in software (host CPU) in TAXI
    too; ``ising`` here is the *simulation* wall-clock of the macro
    annealing — the modelled hardware latency lives in the architecture
    simulator's report.
    """

    clustering: float = 0.0
    fixing: float = 0.0
    ising: float = 0.0
    merge: float = 0.0

    @property
    def total(self) -> float:
        return self.clustering + self.fixing + self.ising + self.merge

    def as_dict(self) -> dict[str, float]:
        return {
            "clustering": self.clustering,
            "fixing": self.fixing,
            "ising": self.ising,
            "merge": self.merge,
        }


@dataclass
class LevelStats:
    """Workload shape of one hierarchy level's solve wave.

    The architecture simulator consumes these to model latency/energy
    of mapping and annealing the level's clusters on parallel macros.
    """

    level: int
    n_subproblems: int
    subproblem_sizes: list[int]
    sweeps: int
    total_iterations: int


@dataclass
class TAXIResult:
    """Everything produced by one end-to-end solve."""

    tour: Tour
    phase_seconds: PhaseTimes
    level_stats: list[LevelStats] = field(default_factory=list)
    hierarchy_depth: int = 0
    max_cluster_size: int = 0
    bits: int = 0

    @property
    def length(self) -> float:
        return self.tour.length

    @property
    def total_subproblems(self) -> int:
        return sum(stats.n_subproblems for stats in self.level_stats)

    @property
    def total_iterations(self) -> int:
        return sum(stats.total_iterations for stats in self.level_stats)

    def optimal_ratio(self, reference_length: float) -> float:
        """Tour length divided by a reference (exact or surrogate) length."""
        if reference_length <= 0:
            raise ValueError(f"reference length must be positive: {reference_length}")
        return self.tour.length / reference_length
