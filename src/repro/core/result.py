"""Solve results: tour, phase timing, per-level and batch statistics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tsp.tour import Tour


@dataclass
class PhaseTimes:
    """Wall-clock seconds per pipeline phase (the Fig 6b breakdown).

    ``clustering`` and ``fixing`` run in software (host CPU) in TAXI
    too; ``ising`` here is the *simulation* wall-clock of the macro
    annealing — the modelled hardware latency lives in the architecture
    simulator's report.
    """

    clustering: float = 0.0
    fixing: float = 0.0
    ising: float = 0.0
    merge: float = 0.0

    @property
    def total(self) -> float:
        return self.clustering + self.fixing + self.ising + self.merge

    def as_dict(self) -> dict[str, float]:
        return {
            "clustering": self.clustering,
            "fixing": self.fixing,
            "ising": self.ising,
            "merge": self.merge,
        }


@dataclass
class LevelStats:
    """Workload shape of one hierarchy level's solve wave.

    The architecture simulator consumes these to model latency/energy
    of mapping and annealing the level's clusters on parallel macros.
    """

    level: int
    n_subproblems: int
    subproblem_sizes: list[int]
    sweeps: int
    total_iterations: int


@dataclass
class TAXIResult:
    """Everything produced by one end-to-end solve."""

    tour: Tour
    phase_seconds: PhaseTimes
    level_stats: list[LevelStats] = field(default_factory=list)
    hierarchy_depth: int = 0
    max_cluster_size: int = 0
    bits: int = 0

    @property
    def length(self) -> float:
        return self.tour.length

    @property
    def total_subproblems(self) -> int:
        return sum(stats.n_subproblems for stats in self.level_stats)

    @property
    def total_iterations(self) -> int:
        return sum(stats.total_iterations for stats in self.level_stats)

    def optimal_ratio(self, reference_length: float) -> float:
        """Tour length divided by a reference (exact or surrogate) length."""
        if reference_length <= 0:
            raise ValueError(f"reference length must be positive: {reference_length}")
        return self.tour.length / reference_length


@dataclass(frozen=True)
class ReplicaResult:
    """One replica's outcome inside a multi-start batch solve.

    Carries the raw city order instead of a :class:`Tour` so replicas
    can cross process boundaries without shipping the instance back.
    """

    index: int
    seed: int
    order: np.ndarray
    length: float
    seconds: float
    #: Wall-clock spent materializing the instance and building the
    #: solver before the solve proper (cache hits make this ~0 after a
    #: worker's first replica).
    setup_seconds: float = 0.0

    def tour(self, instance) -> Tour:
        """Rebuild the full :class:`Tour` against ``instance``."""
        return Tour(instance, self.order, closed=True)


@dataclass
class BatchResult:
    """Aggregate of every replica run against one instance.

    Produced by :mod:`repro.engine.runner`; replicas are stored in
    replica-index order so the aggregate is independent of worker count
    and completion order.
    """

    instance_name: str
    n: int
    solver: str
    replicas: list[ReplicaResult]
    #: Wall-clock of the *whole batch run* this instance belonged to —
    #: shared by every BatchResult of the same job, since instances run
    #: interleaved on one pool.  Per-instance cost is ``solve_seconds``.
    wall_seconds: float = 0.0

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError("BatchResult needs at least one replica")
        self.replicas = sorted(self.replicas, key=lambda r: r.index)

    @property
    def lengths(self) -> np.ndarray:
        """Replica tour lengths in replica-index order."""
        return np.asarray([replica.length for replica in self.replicas], dtype=float)

    @property
    def best(self) -> ReplicaResult:
        """The winning replica (shortest tour; ties go to the lowest index)."""
        return min(self.replicas, key=lambda r: (r.length, r.index))

    @property
    def best_length(self) -> float:
        return self.best.length

    @property
    def median_length(self) -> float:
        return float(np.median(self.lengths))

    @property
    def mean_length(self) -> float:
        return float(self.lengths.mean())

    @property
    def worst_length(self) -> float:
        return float(self.lengths.max())

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile of replica tour lengths (0..100)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return float(np.percentile(self.lengths, q))

    @property
    def solve_seconds(self) -> float:
        """Total solver CPU-side seconds summed over replicas."""
        return float(sum(replica.seconds for replica in self.replicas))

    @property
    def setup_seconds(self) -> float:
        """Total instance/solver setup seconds summed over replicas."""
        return float(sum(replica.setup_seconds for replica in self.replicas))

    def as_dict(self) -> dict[str, float | int | str]:
        """Flat summary row (for tables and CSV export)."""
        return {
            "instance": self.instance_name,
            "n": self.n,
            "solver": self.solver,
            "replicas": len(self.replicas),
            "best": self.best_length,
            "median": self.median_length,
            "p90": self.percentile(90.0),
            "mean": self.mean_length,
            "best_seed": self.best.seed,
            "setup_seconds": self.setup_seconds,
            "solve_seconds": self.solve_seconds,
            "batch_wall_seconds": self.wall_seconds,
        }
