"""Top-down hierarchical solve (paper Section IV-2, Fig 1).

Given a bottom-up hierarchy, the pipeline:

1. solves the **top level** as one closed tour over the top nodes'
   centroids (one macro problem);
2. walking **down** one level at a time, fixes every consecutive
   cluster pair's entry/exit cities (closest leaf pairs), then orders
   each cluster's children as an open path between the children holding
   the entry and exit leaves — all clusters of a level in one batched
   macro wave (the chip's parallelism);
3. at level 0 the node sequence *is* the city tour.

Distances: child orderings at levels >= 2 use centroid distances;
level-1 clusters order actual cities with the instance metric.
"""

from __future__ import annotations

import time

import numpy as np

from repro.clustering.fixing import (
    EndpointFixing,
    centroid_distance_matrix,
    fix_level_endpoints,
)
from repro.clustering.hierarchy import Hierarchy
from repro.core.result import LevelStats, PhaseTimes
from repro.errors import SolverError
from repro.macro.batch import BatchedMacroSolver, SubProblem
from repro.macro.schedule import AnnealSchedule


def solve_hierarchical(
    hierarchy: Hierarchy,
    solver: BatchedMacroSolver,
    schedule: AnnealSchedule,
    endpoint_fixing: bool = True,
) -> tuple[np.ndarray, PhaseTimes, list[LevelStats]]:
    """Solve the hierarchy top-down; returns (city order, times, stats)."""
    instance = hierarchy.instance
    times = PhaseTimes()
    level_stats: list[LevelStats] = []

    sequence = _solve_top_level(hierarchy, solver, schedule, times, level_stats)

    for level_idx in range(hierarchy.depth - 1, 0, -1):
        level = hierarchy.levels[level_idx]
        fixings = _fix_endpoints_for(
            hierarchy, level, sequence, endpoint_fixing, times
        )
        sequence = _order_children(
            hierarchy, level, sequence, fixings, solver, schedule,
            endpoint_fixing, times, level_stats,
        )
    order = np.asarray(sequence, dtype=int)
    if np.unique(order).size != instance.n:
        raise SolverError(
            "pipeline produced an invalid tour "
            f"({np.unique(order).size} unique of {instance.n})"
        )
    return order, times, level_stats


# ----------------------------------------------------------------------
# stages
# ----------------------------------------------------------------------
def _solve_top_level(
    hierarchy: Hierarchy,
    solver: BatchedMacroSolver,
    schedule: AnnealSchedule,
    times: PhaseTimes,
    level_stats: list[LevelStats],
) -> list[int]:
    top = hierarchy.top
    k = top.n_nodes
    if k == 1:
        return [0]
    if k <= 3:
        # Any cyclic order of <= 3 nodes has the same length.
        return list(range(k))
    start = time.perf_counter()
    problem = SubProblem(
        centroid_distance_matrix(top.centroids),
        closed=True,
        fixed_first=False,
        fixed_last=False,
        tag="top",
    )
    solution = solver.solve_all([problem], schedule)[0]
    times.ising += time.perf_counter() - start
    level_stats.append(
        LevelStats(
            level=hierarchy.depth - 1,
            n_subproblems=1,
            subproblem_sizes=[k],
            sweeps=solution.sweeps,
            total_iterations=solution.iterations,
        )
    )
    return [int(c) for c in solution.order]


def _fix_endpoints_for(
    hierarchy: Hierarchy,
    level,
    sequence: list[int],
    endpoint_fixing: bool,
    times: PhaseTimes,
) -> list[EndpointFixing] | None:
    if not endpoint_fixing or len(sequence) < 2:
        return None
    start = time.perf_counter()
    below = hierarchy.levels[level.level - 1]
    leaves_in_order = [level.leaves[node] for node in sequence]
    child_maps = []
    for node in sequence:
        mapping: dict[int, int] = {}
        for child_pos, child in enumerate(level.children[node]):
            for leaf in below.leaves[child]:
                mapping[int(leaf)] = child_pos
        child_maps.append(mapping)
    fixings = fix_level_endpoints(hierarchy.instance, leaves_in_order, child_maps)
    times.fixing += time.perf_counter() - start
    return fixings


def _order_children(
    hierarchy: Hierarchy,
    level,
    sequence: list[int],
    fixings: list[EndpointFixing] | None,
    solver: BatchedMacroSolver,
    schedule: AnnealSchedule,
    endpoint_fixing: bool,
    times: PhaseTimes,
    level_stats: list[LevelStats],
) -> list[int]:
    instance = hierarchy.instance
    below = hierarchy.levels[level.level - 1]
    problems: list[SubProblem] = []
    placements: list[tuple[int, np.ndarray] | tuple[int, None]] = []

    build_start = time.perf_counter()
    for position, node in enumerate(sequence):
        children = level.children[node]
        if children.size == 1:
            placements.append((position, children))
            continue
        entry_child = exit_child = None
        if fixings is not None:
            fixing = fixings[position]
            entry_child = _locate_child(below, children, fixing.entry_leaf)
            exit_child = _locate_child(below, children, fixing.exit_leaf)
        if level.level == 1:
            dist = instance.distance_submatrix(children)
        else:
            dist = centroid_distance_matrix(below.centroids[children])
        initial, fixed_first, fixed_last = _initial_child_order(
            children.size, entry_child, exit_child, dist
        )
        problems.append(
            SubProblem(
                dist,
                initial_order=initial,
                closed=False,
                fixed_first=fixed_first,
                fixed_last=fixed_last,
                tag=position,
            )
        )
        placements.append((position, None))
    times.merge += time.perf_counter() - build_start

    solve_start = time.perf_counter()
    solutions = solver.solve_all(problems, schedule) if problems else []
    times.ising += time.perf_counter() - solve_start

    solved_orders: dict[int, np.ndarray] = {}
    for problem, solution in zip(problems, solutions):
        solved_orders[problem.tag] = solution.order

    merge_start = time.perf_counter()
    new_sequence: list[int] = []
    for position, direct in placements:
        node = sequence[position]
        children = level.children[node]
        if direct is not None:
            new_sequence.extend(int(c) for c in direct)
            continue
        local_order = solved_orders[position]
        new_sequence.extend(int(children[i]) for i in local_order)
    times.merge += time.perf_counter() - merge_start

    if problems:
        level_stats.append(
            LevelStats(
                level=level.level,
                n_subproblems=len(problems),
                subproblem_sizes=[p.n for p in problems],
                sweeps=max((s.sweeps for s in solutions), default=0),
                total_iterations=sum(s.iterations for s in solutions),
            )
        )
    return new_sequence


def _locate_child(below, children: np.ndarray, leaf: int) -> int:
    """Which local child index contains the given leaf city."""
    for local, child in enumerate(children):
        if leaf in below.leaves[child]:
            return local
    raise SolverError(f"leaf {leaf} not found under the expected cluster")


def _initial_child_order(
    count: int,
    entry_child: int | None,
    exit_child: int | None,
    dist: np.ndarray,
) -> tuple[np.ndarray, bool, bool]:
    """Initial visiting order ("input order") for one sub-problem.

    The paper initializes each macro with the input order; the pipeline
    defines that input as a nearest-neighbour chain from the entry
    child (ending at the exit child when one is pinned) — a cheap
    host-side construction that every solver variant shares.
    """
    if entry_child is None or exit_child is None:
        start = 0 if entry_child is None else entry_child
        chain = _nn_chain(dist, start, None)
        return chain, entry_child is not None, False
    if entry_child == exit_child:
        # Conflict (same child holds both endpoints): pin the entry side
        # only; the annealer may choose the exit child freely.
        chain = _nn_chain(dist, entry_child, None)
        return chain, True, False
    chain = _nn_chain(dist, entry_child, exit_child)
    return chain, True, True


def _nn_chain(dist: np.ndarray, start: int, end: int | None) -> np.ndarray:
    """Greedy nearest-neighbour order from ``start`` (optionally ending at ``end``)."""
    count = dist.shape[0]
    visited = np.zeros(count, dtype=bool)
    order = [start]
    visited[start] = True
    if end is not None:
        visited[end] = True
    current = start
    for _ in range(count - 1 - (1 if end is not None else 0)):
        row = dist[current].copy()
        row[visited] = np.inf
        current = int(np.argmin(row))
        order.append(current)
        visited[current] = True
    if end is not None:
        order.append(end)
    return np.asarray(order, dtype=int)
