"""Top-down hierarchical solve (paper Section IV-2, Fig 1).

Given a bottom-up hierarchy, the pipeline:

1. solves the **top level** as one closed tour over the top nodes'
   centroids (one macro problem);
2. walking **down** one level at a time, fixes every consecutive
   cluster pair's entry/exit cities (closest leaf pairs), then orders
   each cluster's children as an open path between the children holding
   the entry and exit leaves — all clusters of a level form one
   **wavefront** of mutually independent sub-problems (the chip's
   parallelism);
3. at level 0 the node sequence *is* the city tour.

Wavefront dispatch
------------------
Each level's sub-problems are chunked deterministically (grouped by
shape so the macro batch can vectorize, then cut into fixed-size runs;
see :func:`repro.engine.wavefront.chunk_indices`) and dispatched
through a :class:`~repro.engine.wavefront.WavefrontPool`.  Every chunk
derives its own RNG from ``(master seed, level, chunk ordinal)``, so a
chunk's result is a pure function of the chunk description:
``workers=1`` reproduces any parallel run bit-for-bit — the same
contract the replica engine established in PR 1.

Distances: child orderings at levels >= 2 use centroid distances;
level-1 clusters order actual cities with the instance metric, sliced
through a per-solve :class:`~repro.clustering.cache.SubmatrixCache`
shared with the endpoint-fixing step.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.clustering.cache import DEFAULT_CACHE_BUDGET, SubmatrixCache
from repro.clustering.fixing import (
    EndpointFixing,
    centroid_distance_matrix,
    fix_level_endpoints,
)
from repro.clustering.hierarchy import Hierarchy
from repro.core.result import LevelStats, PhaseTimes
from repro.engine.wavefront import WavefrontPool, chunk_indices
from repro.errors import SolverError
from repro.macro.batch import (
    BatchedMacroSolver,
    SubProblem,
    SubSolution,
    solve_chunks_lockstep,
)
from repro.macro.config import MacroConfig
from repro.macro.schedule import AnnealSchedule

#: Sub-problems per dispatch chunk.  Part of the solve's deterministic
#: identity (chunk boundaries feed the per-chunk seeds), NOT a tuning
#: knob to vary per run: changing it changes the RNG streams.
DEFAULT_CHUNK_SIZE = 8


@dataclass(frozen=True)
class WaveChunk:
    """One picklable unit of wavefront work: a few sibling sub-problems.

    The chunk seed is derived inside the worker from
    ``(master_seed, level, ordinal)`` — nothing stateful crosses the
    process boundary, so results are identical at any worker count.
    """

    level: int
    ordinal: int
    master_seed: int
    config: MacroConfig
    backend: str
    schedule: AnnealSchedule
    problems: tuple[SubProblem, ...]


def solve_wave_chunk(chunk: WaveChunk) -> tuple[list[SubSolution], int, int]:
    """Solve one chunk (module-level so process pools can pickle it).

    Returns ``(solutions, sweeps, iterations)`` where the counters are
    the chunk solver's totals (for the template solver's bookkeeping).
    """
    rng = np.random.default_rng(
        np.random.SeedSequence([chunk.master_seed, chunk.level, chunk.ordinal])
    )
    solver = BatchedMacroSolver(chunk.config, seed=rng, backend=chunk.backend)
    solutions = solver.solve_all(list(chunk.problems), chunk.schedule)
    return solutions, solver.total_sweeps, solver.total_iterations


class WaveScheduler:
    """Dispatches one hierarchy's wavefronts through a pool.

    Wraps the caller's template :class:`BatchedMacroSolver`: its config
    and backend are shipped to every chunk, one master seed is drawn
    from its RNG up front, and its sweep/iteration counters accumulate
    the chunk totals so existing reporting keeps working.

    Duck-typed solvers that only provide ``solve_all`` (e.g. the
    Neuro-Ising selective-budget adapter, whose cluster ranking is a
    barrier across the whole wavefront) fall back to one in-process
    ``solve_all`` call per wave — the legacy serial semantics.
    """

    def __init__(
        self,
        solver: BatchedMacroSolver,
        schedule: AnnealSchedule,
        pool: WavefrontPool,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> None:
        self.solver = solver
        self.schedule = schedule
        self.pool = pool
        self.chunk_size = chunk_size
        self._dispatchable = isinstance(solver, BatchedMacroSolver)
        # One draw, before any dispatch: every chunk seed derives from
        # this, so the whole solve is a function of the template RNG.
        self.master_seed = (
            int(solver._rng.integers(0, 2**63 - 1)) if self._dispatchable else 0
        )

    def solve_wave(
        self, problems: list[SubProblem], level: int
    ) -> list[SubSolution]:
        """Solve one level's wavefront; results align with the input."""
        if not problems:
            return []
        if not self._dispatchable:
            return self.solver.solve_all(problems, self.schedule)
        chunks = chunk_indices([p.shape_key for p in problems], self.chunk_size)
        tasks = [
            WaveChunk(
                level=level,
                ordinal=ordinal,
                master_seed=self.master_seed,
                config=self.solver.config,
                backend=self.solver.backend,
                schedule=self.schedule,
                problems=tuple(problems[i] for i in indices),
            )
            for ordinal, indices in enumerate(chunks)
        ]
        solutions: list[SubSolution | None] = [None] * len(problems)
        for indices, (chunk_solutions, sweeps, iterations) in zip(
            chunks, self.pool.map(solve_wave_chunk, tasks)
        ):
            self.solver.total_sweeps += sweeps
            self.solver.total_iterations += iterations
            for local, solution in zip(indices, chunk_solutions):
                solutions[local] = solution
        return solutions  # type: ignore[return-value]


def solve_hierarchical(
    hierarchy: Hierarchy,
    solver: BatchedMacroSolver,
    schedule: AnnealSchedule,
    endpoint_fixing: bool = True,
    workers: int = 1,
    executor=None,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    cache: SubmatrixCache | None = None,
) -> tuple[np.ndarray, PhaseTimes, list[LevelStats]]:
    """Solve the hierarchy top-down; returns (city order, times, stats).

    Parameters
    ----------
    workers:
        Wavefront process-pool width.  ``1`` (default) solves every
        chunk inline; any width produces bit-identical tours because
        chunks are self-seeded and deterministically cut.
    executor:
        Explicit :class:`~concurrent.futures.Executor` overriding the
        internal pool (tests inject thread/inline executors).
    chunk_size:
        Sub-problems per dispatch chunk; part of the deterministic
        solve identity (see :data:`DEFAULT_CHUNK_SIZE`).
    cache:
        Distance-submatrix cache.  Defaults to a fresh per-solve cache;
        callers solving one hierarchy repeatedly (replica batches over
        a deterministic ward clustering) pass a shared instance so
        endpoint fixing and child ordering reuse slices across solves
        instead of re-slicing the metric per solve.
    """
    instance = hierarchy.instance
    times = PhaseTimes()
    level_stats: list[LevelStats] = []
    if cache is None:
        # Per-solve cache: every pair block is requested once, so only
        # the (reusable) square submatrices are worth retaining — and
        # only up to a byte budget, so an n=10^5 solve holds a bounded
        # working set of blocks instead of one per cluster.  Small
        # solves never reach the budget, making this identical to the
        # historical unbounded cache there.
        cache = SubmatrixCache(
            instance,
            retain_cross_blocks=False,
            budget_bytes=DEFAULT_CACHE_BUDGET,
        )

    with WavefrontPool(workers=workers, executor=executor) as pool:
        scheduler = WaveScheduler(solver, schedule, pool, chunk_size)
        sequence = _solve_top_level(hierarchy, scheduler, times, level_stats)
        for level_idx in range(hierarchy.depth - 1, 0, -1):
            level = hierarchy.levels[level_idx]
            fixings = _fix_endpoints_for(
                hierarchy, level, sequence, endpoint_fixing, times, cache
            )
            sequence = _order_children(
                hierarchy, level, sequence, fixings, scheduler,
                times, level_stats, cache,
            )
    order = np.asarray(sequence, dtype=int)
    if np.unique(order).size != instance.n:
        raise SolverError(
            "pipeline produced an invalid tour "
            f"({np.unique(order).size} unique of {instance.n})"
        )
    return order, times, level_stats


def solve_hierarchical_replicas(
    hierarchy: Hierarchy,
    solvers: list[BatchedMacroSolver],
    schedule: AnnealSchedule,
    endpoint_fixing: bool = True,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    cache: SubmatrixCache | None = None,
) -> list[tuple[np.ndarray, PhaseTimes, list[LevelStats]]]:
    """Solve one hierarchy for R replica solvers in lock-step.

    ``solvers[r]`` plays the role the template solver plays in
    :func:`solve_hierarchical` for replica ``r``: one master seed is
    drawn from its RNG up front (the same draw ``WaveScheduler``
    makes), every chunk of replica ``r`` derives its seed from
    ``(master_seed[r], level, ordinal)``, and the solver's counters
    accumulate its chunk totals.  Instead of solving R x chunks
    serially, all replicas' same-shape chunks at a level are merged
    into single lock-step kernel batches
    (:func:`repro.macro.batch.solve_chunks_lockstep`), so each sweep
    advances R replicas x C clusters as one array — the chip-level
    parallelism of the paper, realized on one core.

    Every replica's tour is **bit-identical** to a solo
    ``solve_hierarchical(hierarchy, solvers[r], ...)`` run at
    ``workers=1``: chunk seeds, RNG draw order, and per-row arithmetic
    are all preserved (see :mod:`repro.kernels.array_backend`).

    Wall time of the merged solves is attributed evenly (1/R) to each
    replica's phase times.
    """
    instance = hierarchy.instance
    n_replicas = len(solvers)
    all_times = [PhaseTimes() for _ in range(n_replicas)]
    all_stats: list[list[LevelStats]] = [[] for _ in range(n_replicas)]
    if cache is None:
        # Shared across replicas: every block is requested once per
        # replica, so retaining cross blocks pays off here (unlike the
        # single-solve default).
        cache = SubmatrixCache(instance)
    # One draw per replica, before any dispatch (= WaveScheduler.__init__).
    master_seeds = [
        int(solver._rng.integers(0, 2**63 - 1)) for solver in solvers
    ]
    template = solvers[0]

    def chunk_solver_for(replica: int, level: int, ordinal: int) -> BatchedMacroSolver:
        rng = np.random.default_rng(
            np.random.SeedSequence([master_seeds[replica], level, ordinal])
        )
        return BatchedMacroSolver(
            template.config, seed=rng, backend=template.backend
        )

    # ---- top level -----------------------------------------------------
    top = hierarchy.top
    k = top.n_nodes
    if k == 1:
        sequences: list[list[int]] = [[0] for _ in range(n_replicas)]
    elif k <= 3:
        sequences = [list(range(k)) for _ in range(n_replicas)]
    else:
        start = time.perf_counter()
        problem = SubProblem(
            centroid_distance_matrix(top.centroids),
            closed=True,
            fixed_first=False,
            fixed_last=False,
            tag="top",
        )
        chunk_solvers = [
            chunk_solver_for(r, hierarchy.depth - 1, 0)
            for r in range(n_replicas)
        ]
        solved = solve_chunks_lockstep(
            chunk_solvers, [[problem]] * n_replicas, schedule
        )
        share = (time.perf_counter() - start) / n_replicas
        sequences = []
        for r in range(n_replicas):
            solvers[r].total_sweeps += chunk_solvers[r].total_sweeps
            solvers[r].total_iterations += chunk_solvers[r].total_iterations
            solution = solved[r][0]
            all_times[r].ising += share
            all_stats[r].append(
                LevelStats(
                    level=hierarchy.depth - 1,
                    n_subproblems=1,
                    subproblem_sizes=[k],
                    sweeps=solution.sweeps,
                    total_iterations=solution.iterations,
                )
            )
            sequences.append([int(c) for c in solution.order])

    # ---- down levels ---------------------------------------------------
    for level_idx in range(hierarchy.depth - 1, 0, -1):
        level = hierarchy.levels[level_idx]
        per_problems: list[list[SubProblem]] = []
        per_placements = []
        for r in range(n_replicas):
            fixings = _fix_endpoints_for(
                hierarchy, level, sequences[r], endpoint_fixing,
                all_times[r], cache,
            )
            build_start = time.perf_counter()
            problems, placements = _build_child_problems(
                hierarchy, level, sequences[r], fixings, cache
            )
            all_times[r].merge += time.perf_counter() - build_start
            per_problems.append(problems)
            per_placements.append(placements)

        # Merge every replica's same-shape chunks into lock-step batches.
        solve_start = time.perf_counter()
        by_shape: dict[object, list[tuple[int, list[int]]]] = {}
        for r in range(n_replicas):
            chunks = chunk_indices(
                [p.shape_key for p in per_problems[r]], chunk_size
            )
            for ordinal, indices in enumerate(chunks):
                key = per_problems[r][indices[0]].shape_key
                by_shape.setdefault(key, []).append((r, ordinal, indices))
        per_solutions: list[list[SubSolution | None]] = [
            [None] * len(per_problems[r]) for r in range(n_replicas)
        ]
        for entries in by_shape.values():
            chunk_solvers = [
                chunk_solver_for(r, level.level, ordinal)
                for r, ordinal, _ in entries
            ]
            chunk_problem_lists = [
                [per_problems[r][i] for i in indices]
                for r, _, indices in entries
            ]
            solved = solve_chunks_lockstep(
                chunk_solvers, chunk_problem_lists, schedule
            )
            for (r, _, indices), solver, solutions in zip(
                entries, chunk_solvers, solved
            ):
                solvers[r].total_sweeps += solver.total_sweeps
                solvers[r].total_iterations += solver.total_iterations
                for local, solution in zip(indices, solutions):
                    per_solutions[r][local] = solution
        share = (time.perf_counter() - solve_start) / n_replicas

        for r in range(n_replicas):
            all_times[r].ising += share
            problems = per_problems[r]
            solutions = per_solutions[r]
            solved_orders = {
                problem.tag: solution.order
                for problem, solution in zip(problems, solutions)
            }
            merge_start = time.perf_counter()
            sequences[r] = _merge_child_orders(
                level, sequences[r], per_placements[r], solved_orders
            )
            all_times[r].merge += time.perf_counter() - merge_start
            if problems:
                all_stats[r].append(
                    LevelStats(
                        level=level.level,
                        n_subproblems=len(problems),
                        subproblem_sizes=[p.n for p in problems],
                        sweeps=max((s.sweeps for s in solutions), default=0),
                        total_iterations=sum(s.iterations for s in solutions),
                    )
                )

    results = []
    for r in range(n_replicas):
        order = np.asarray(sequences[r], dtype=int)
        if np.unique(order).size != instance.n:
            raise SolverError(
                "pipeline produced an invalid tour "
                f"({np.unique(order).size} unique of {instance.n})"
            )
        results.append((order, all_times[r], all_stats[r]))
    return results


# ----------------------------------------------------------------------
# stages
# ----------------------------------------------------------------------
def _solve_top_level(
    hierarchy: Hierarchy,
    scheduler: WaveScheduler,
    times: PhaseTimes,
    level_stats: list[LevelStats],
) -> list[int]:
    top = hierarchy.top
    k = top.n_nodes
    if k == 1:
        return [0]
    if k <= 3:
        # Any cyclic order of <= 3 nodes has the same length.
        return list(range(k))
    start = time.perf_counter()
    problem = SubProblem(
        centroid_distance_matrix(top.centroids),
        closed=True,
        fixed_first=False,
        fixed_last=False,
        tag="top",
    )
    solution = scheduler.solve_wave([problem], level=hierarchy.depth - 1)[0]
    times.ising += time.perf_counter() - start
    level_stats.append(
        LevelStats(
            level=hierarchy.depth - 1,
            n_subproblems=1,
            subproblem_sizes=[k],
            sweeps=solution.sweeps,
            total_iterations=solution.iterations,
        )
    )
    return [int(c) for c in solution.order]


def _fix_endpoints_for(
    hierarchy: Hierarchy,
    level,
    sequence: list[int],
    endpoint_fixing: bool,
    times: PhaseTimes,
    cache: SubmatrixCache,
) -> list[EndpointFixing] | None:
    if not endpoint_fixing or len(sequence) < 2:
        return None
    start = time.perf_counter()
    below = hierarchy.levels[level.level - 1]
    leaves_in_order = [level.leaves[node] for node in sequence]
    child_maps = []
    for node in sequence:
        mapping: dict[int, int] = {}
        for child_pos, child in enumerate(level.children[node]):
            for leaf in below.leaves[child]:
                mapping[int(leaf)] = child_pos
        child_maps.append(mapping)
    fixings = fix_level_endpoints(
        hierarchy.instance,
        leaves_in_order,
        child_maps,
        cache=cache,
        cluster_keys=[(level.level, int(node)) for node in sequence],
    )
    times.fixing += time.perf_counter() - start
    return fixings


def _build_child_problems(
    hierarchy: Hierarchy,
    level,
    sequence: list[int],
    fixings: list[EndpointFixing] | None,
    cache: SubmatrixCache,
) -> tuple[list[SubProblem], list[tuple[int, np.ndarray] | tuple[int, None]]]:
    """One level's child-ordering sub-problems plus placement records.

    A placement ``(position, children)`` records a single-child node
    emitted directly; ``(position, None)`` marks a node whose solved
    order arrives tagged with ``position``.  Pure function of
    ``(hierarchy, sequence, fixings)`` — the lock-step replica path
    relies on that purity to build each replica's problems
    independently of the others.
    """
    below = hierarchy.levels[level.level - 1]
    problems: list[SubProblem] = []
    placements: list[tuple[int, np.ndarray] | tuple[int, None]] = []
    for position, node in enumerate(sequence):
        children = level.children[node]
        if children.size == 1:
            placements.append((position, children))
            continue
        entry_child = exit_child = None
        if fixings is not None:
            fixing = fixings[position]
            entry_child = _locate_child(below, children, fixing.entry_leaf)
            exit_child = _locate_child(below, children, fixing.exit_leaf)
        if level.level == 1:
            dist = cache.submatrix(("sub", level.level, int(node)), children)
        else:
            dist = centroid_distance_matrix(below.centroids[children])
        initial, fixed_first, fixed_last = _initial_child_order(
            children.size, entry_child, exit_child, dist
        )
        problems.append(
            SubProblem(
                dist,
                initial_order=initial,
                closed=False,
                fixed_first=fixed_first,
                fixed_last=fixed_last,
                tag=position,
            )
        )
        placements.append((position, None))
    return problems, placements


def _merge_child_orders(
    level,
    sequence: list[int],
    placements: list[tuple[int, np.ndarray] | tuple[int, None]],
    solved_orders: dict[int, np.ndarray],
) -> list[int]:
    """Expand a node sequence into its ordered children."""
    new_sequence: list[int] = []
    for position, direct in placements:
        node = sequence[position]
        children = level.children[node]
        if direct is not None:
            new_sequence.extend(int(c) for c in direct)
            continue
        local_order = solved_orders[position]
        new_sequence.extend(int(children[i]) for i in local_order)
    return new_sequence


def _order_children(
    hierarchy: Hierarchy,
    level,
    sequence: list[int],
    fixings: list[EndpointFixing] | None,
    scheduler: WaveScheduler,
    times: PhaseTimes,
    level_stats: list[LevelStats],
    cache: SubmatrixCache,
) -> list[int]:
    build_start = time.perf_counter()
    problems, placements = _build_child_problems(
        hierarchy, level, sequence, fixings, cache
    )
    times.merge += time.perf_counter() - build_start

    solve_start = time.perf_counter()
    solutions = scheduler.solve_wave(problems, level=level.level)
    times.ising += time.perf_counter() - solve_start

    solved_orders: dict[int, np.ndarray] = {}
    for problem, solution in zip(problems, solutions):
        solved_orders[problem.tag] = solution.order

    merge_start = time.perf_counter()
    new_sequence = _merge_child_orders(level, sequence, placements, solved_orders)
    times.merge += time.perf_counter() - merge_start

    if problems:
        level_stats.append(
            LevelStats(
                level=level.level,
                n_subproblems=len(problems),
                subproblem_sizes=[p.n for p in problems],
                sweeps=max((s.sweeps for s in solutions), default=0),
                total_iterations=sum(s.iterations for s in solutions),
            )
        )
    return new_sequence


def _locate_child(below, children: np.ndarray, leaf: int) -> int:
    """Which local child index contains the given leaf city."""
    for local, child in enumerate(children):
        if leaf in below.leaves[child]:
            return local
    raise SolverError(f"leaf {leaf} not found under the expected cluster")


def _initial_child_order(
    count: int,
    entry_child: int | None,
    exit_child: int | None,
    dist: np.ndarray,
) -> tuple[np.ndarray, bool, bool]:
    """Initial visiting order ("input order") for one sub-problem.

    The paper initializes each macro with the input order; the pipeline
    defines that input as a nearest-neighbour chain from the entry
    child (ending at the exit child when one is pinned) — a cheap
    host-side construction that every solver variant shares.
    """
    if entry_child is None or exit_child is None:
        start = 0 if entry_child is None else entry_child
        chain = _nn_chain(dist, start, None)
        return chain, entry_child is not None, False
    if entry_child == exit_child:
        # Conflict (same child holds both endpoints): pin the entry side
        # only; the annealer may choose the exit child freely.
        chain = _nn_chain(dist, entry_child, None)
        return chain, True, False
    chain = _nn_chain(dist, entry_child, exit_child)
    return chain, True, True


def _nn_chain(dist: np.ndarray, start: int, end: int | None) -> np.ndarray:
    """Greedy nearest-neighbour order from ``start`` (optionally ending at ``end``)."""
    count = dist.shape[0]
    visited = np.zeros(count, dtype=bool)
    order = [start]
    visited[start] = True
    if end is not None:
        visited[end] = True
    current = start
    for _ in range(count - 1 - (1 if end is not None else 0)):
        row = dist[current].copy()
        row[visited] = np.inf
        current = int(np.argmin(row))
        order.append(current)
        visited[current] = True
    if end is not None:
        order.append(end)
    return np.asarray(order, dtype=int)
