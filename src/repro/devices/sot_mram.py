"""SOT-MRAM cell with current-controlled stochastic switching.

The Spin Hall effect in the heavy-metal layer under the free ferromagnet
switches the MTJ with a probability that grows sigmoidally with the
write current (paper Fig 4c inset, device of [19]).  TAXI exploits the
*stochastic* region of that curve as a natural annealing knob:

* 353 uA  -> P_sw =  1 %   (the paper's annealing stop point)
* 420 uA  -> P_sw = 20 %   (the paper's annealing start point)
* >650 uA -> deterministic switching (crossbar writes)
* stochastic operating range quoted as 300 uA - 650 uA

We model P_sw(I) as a logistic curve fitted exactly through the two
quoted (current, probability) anchor points; the resulting curve is
saturated (>99.99 %) at 650 uA and negligible (<0.1 %) at 300 uA,
consistent with the quoted regimes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.devices.mtj import MTJ, MTJState
from repro.errors import DeviceError
from repro.utils.rng import ensure_rng
from repro.utils.units import MICRO
from repro.utils.validation import check_probability

#: Stochastic switching operating window quoted in the paper (amperes).
STOCHASTIC_CURRENT_RANGE: tuple[float, float] = (300.0 * MICRO, 650.0 * MICRO)

#: Above this write current the paper treats switching as deterministic.
DETERMINISTIC_MIN_CURRENT: float = 650.0 * MICRO

# Paper anchor points used for the logistic fit.
_ANCHOR_LOW = (353.0 * MICRO, 0.01)
_ANCHOR_HIGH = (420.0 * MICRO, 0.20)


def _logit(p: float) -> float:
    return math.log(p / (1.0 - p))


def _fit_logistic(
    anchor_low: tuple[float, float], anchor_high: tuple[float, float]
) -> tuple[float, float]:
    """Solve midpoint current I0 and slope k of p = 1/(1+exp(-(I-I0)/k))."""
    (i_low, p_low), (i_high, p_high) = anchor_low, anchor_high
    k = (i_high - i_low) / (_logit(p_high) - _logit(p_low))
    i0 = i_high - k * _logit(p_high)
    return i0, k


@dataclass(frozen=True)
class SwitchingCharacteristic:
    """Logistic P_sw(I_write) curve of a SOT device.

    Parameters
    ----------
    midpoint_current:
        Current at which P_sw = 50 % (amperes).
    slope_current:
        Logistic slope parameter (amperes); smaller = steeper.
    """

    midpoint_current: float
    slope_current: float

    @classmethod
    def from_paper_anchors(cls) -> "SwitchingCharacteristic":
        """The curve through the paper's (353 uA, 1 %) and (420 uA, 20 %) points."""
        i0, k = _fit_logistic(_ANCHOR_LOW, _ANCHOR_HIGH)
        return cls(i0, k)

    def probability(self, current: float | np.ndarray) -> float | np.ndarray:
        """Switching probability at the given write current(s)."""
        z = (np.asarray(current, dtype=float) - self.midpoint_current) / self.slope_current
        p = 1.0 / (1.0 + np.exp(-z))
        if np.ndim(current) == 0:
            return float(p)
        return p

    def current_for(self, probability: float) -> float:
        """Inverse curve: the write current that yields ``probability``."""
        check_probability("probability", probability, DeviceError)
        if not 0.0 < probability < 1.0:
            raise DeviceError(
                f"inverse only defined on (0, 1), got {probability}"
            )
        return self.midpoint_current + self.slope_current * _logit(probability)


@dataclass
class SOTDevice:
    """One 3T-1M SOT-MRAM cell: an MTJ plus its switching characteristic.

    The cell is the unit of both the crossbar array (operated in the
    deterministic regime, > 650 uA) and the stochastic mask circuit
    (operated in the stochastic regime).
    """

    mtj: MTJ = field(default_factory=MTJ)
    characteristic: SwitchingCharacteristic = field(
        default_factory=SwitchingCharacteristic.from_paper_anchors
    )
    state: MTJState = MTJState.ANTI_PARALLEL

    def switching_probability(self, current: float) -> float:
        """P_sw at ``current``; raises if the current is negative."""
        if current < 0:
            raise DeviceError(f"write current must be >= 0, got {current}")
        return float(self.characteristic.probability(current))

    def apply_write(
        self, current: float, rng: int | None | np.random.Generator = None
    ) -> bool:
        """Attempt a switch with write current ``current``.

        Returns ``True`` if the device switched state.  Above the
        deterministic threshold this always switches; below, it switches
        with probability P_sw(I).
        """
        p = self.switching_probability(current)
        if current >= DETERMINISTIC_MIN_CURRENT:
            switched = True
        else:
            switched = bool(ensure_rng(rng).random() < p)
        if switched:
            self.state = self.state.flipped()
        return switched

    def write_deterministic(self, target: MTJState) -> None:
        """Force the device into ``target`` (models a >650 uA directed write)."""
        self.state = target

    @property
    def resistance(self) -> float:
        """Current resistance given the magnetization state."""
        return self.mtj.resistance(self.state)

    @property
    def conductance(self) -> float:
        """Current conductance given the magnetization state."""
        return self.mtj.conductance(self.state)

    def is_deterministic(self, current: float) -> bool:
        """Whether ``current`` is in the deterministic write regime."""
        return current >= DETERMINISTIC_MIN_CURRENT

    def is_stochastic(self, current: float) -> bool:
        """Whether ``current`` falls in the quoted stochastic window."""
        low, high = STOCHASTIC_CURRENT_RANGE
        return low <= current < high
