"""Device-to-device and cycle-to-cycle variation models.

The paper's simulations "consider ON/OFF resistance of SOT-MRAM and
transistors and wire resistance" for realism.  This module provides the
variation knobs the crossbar model consumes:

* lognormal resistance variation (device-to-device, frozen at program
  time);
* additive Gaussian read noise (cycle-to-cycle, fresh every MAC);
* stuck-at-fault injection for robustness testing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import DeviceError
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class DeviceVariation:
    """Variation parameters applied to a programmed conductance matrix.

    Parameters
    ----------
    resistance_sigma:
        Std-dev of lognormal device-to-device conductance variation
        (fraction, e.g. 0.05 for ~5 %).  Applied once at program time.
    read_noise_sigma:
        Std-dev of Gaussian cycle-to-cycle noise as a fraction of each
        cell's conductance.  Applied per read.
    stuck_off_rate, stuck_on_rate:
        Probability that a cell is stuck at G_off / G_on regardless of
        programming.
    """

    resistance_sigma: float = 0.0
    read_noise_sigma: float = 0.0
    stuck_off_rate: float = 0.0
    stuck_on_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("resistance_sigma", "read_noise_sigma", "stuck_off_rate", "stuck_on_rate"):
            value = getattr(self, name)
            if value < 0:
                raise DeviceError(f"{name} must be >= 0, got {value}")
        if self.stuck_off_rate + self.stuck_on_rate > 1.0:
            raise DeviceError("stuck_off_rate + stuck_on_rate must not exceed 1")

    @property
    def is_ideal(self) -> bool:
        """True when every knob is zero (fast path: no sampling needed)."""
        return (
            self.resistance_sigma == 0.0
            and self.read_noise_sigma == 0.0
            and self.stuck_off_rate == 0.0
            and self.stuck_on_rate == 0.0
        )

    def apply_programming(
        self,
        conductances: np.ndarray,
        g_on: float,
        g_off: float,
        rng: int | None | np.random.Generator = None,
    ) -> np.ndarray:
        """Perturb a programmed conductance matrix (device-to-device).

        Lognormal multiplicative variation plus stuck-at faults; the
        result stays within ``[0, g_on]``.
        """
        rng = ensure_rng(rng)
        out = np.asarray(conductances, dtype=float).copy()
        if self.resistance_sigma > 0:
            out *= rng.lognormal(0.0, self.resistance_sigma, size=out.shape)
        fault_rate = self.stuck_off_rate + self.stuck_on_rate
        if fault_rate > 0:
            u = rng.random(out.shape)
            out[u < self.stuck_off_rate] = g_off
            stuck_on = (u >= self.stuck_off_rate) & (u < fault_rate)
            out[stuck_on] = g_on
        return np.clip(out, 0.0, g_on * (1.0 + 5.0 * self.resistance_sigma))

    def apply_read_noise(
        self,
        currents: np.ndarray,
        rng: int | None | np.random.Generator = None,
    ) -> np.ndarray:
        """Add cycle-to-cycle noise to a vector of read currents."""
        if self.read_noise_sigma == 0.0:
            return currents
        rng = ensure_rng(rng)
        noise = rng.normal(0.0, self.read_noise_sigma, size=np.shape(currents))
        return currents * (1.0 + noise)
