"""Magnetic tunnel junction (MTJ) resistance model.

An MTJ has two ferromagnetic layers separated by a thin insulator; its
resistance depends on whether the free layer's magnetic moment is
parallel (R_P, low resistance) or anti-parallel (R_AP, high resistance)
to the fixed layer.  The ratio is set by the tunnel magnetoresistance:

    TMR = (R_AP - R_P) / R_P

Default values are representative of the field-free perpendicular
SOT-MRAM demonstrated in the paper's device reference [19] (IEDM 2022):
R_P = 5 kOhm, TMR = 150 %.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import DeviceError
from repro.utils.units import KILO
from repro.utils.validation import check_positive


class MTJState(enum.Enum):
    """Magnetization alignment of the free layer."""

    PARALLEL = "P"
    ANTI_PARALLEL = "AP"

    def flipped(self) -> "MTJState":
        if self is MTJState.PARALLEL:
            return MTJState.ANTI_PARALLEL
        return MTJState.PARALLEL


@dataclass(frozen=True)
class MTJ:
    """Resistance model of one MTJ stack.

    Parameters
    ----------
    r_parallel:
        Low resistance state R_P in ohms.
    tmr:
        Tunnel magnetoresistance ratio, e.g. ``1.5`` for 150 %.
    """

    r_parallel: float = 5.0 * KILO
    tmr: float = 1.5

    def __post_init__(self) -> None:
        check_positive("r_parallel", self.r_parallel, DeviceError)
        check_positive("tmr", self.tmr, DeviceError)

    @property
    def r_antiparallel(self) -> float:
        """High resistance state R_AP = R_P * (1 + TMR)."""
        return self.r_parallel * (1.0 + self.tmr)

    def resistance(self, state: MTJState) -> float:
        """Resistance in the given state."""
        if state is MTJState.PARALLEL:
            return self.r_parallel
        return self.r_antiparallel

    def conductance(self, state: MTJState) -> float:
        """Conductance in siemens in the given state."""
        return 1.0 / self.resistance(state)

    @property
    def on_off_ratio(self) -> float:
        """Conductance ratio G_P / G_AP = R_AP / R_P."""
        return self.r_antiparallel / self.r_parallel
