"""Random-bit sources: SOT-MRAM stochastic units vs CMOS RNG baseline.

The macro's stochastic mask (paper III-C3) is produced by N identical
SOT units switched in parallel with a shared write current; each unit
that switches passes its column's current to the ArgMax stage.
:class:`StochasticBitSource` models that vector sampling, including the
paper's NAND fallback (if no unit switched, all columns pass).

:class:`CMOSRng` carries the area/throughput/energy figures of the CMOS
true-RNGs the paper compares against ([8]: >375 um^2, 23 Mb/s, 23 pJ/b
in 65nm; [9]: 2.4 Gb/s, 7 mW, 45 nm) so the architecture model can
quantify the SOT advantage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.devices.sot_mram import SwitchingCharacteristic
from repro.errors import DeviceError
from repro.utils.rng import ensure_rng
from repro.utils.units import MEGA, PICO


@dataclass
class StochasticBitSource:
    """N parallel SOT units sampled with a shared write current.

    Parameters
    ----------
    n:
        Vector width (the macro's problem size).
    characteristic:
        Shared switching curve; per-unit midpoint variation can be
        injected via ``midpoint_sigma`` (fractional std-dev).
    seed:
        RNG seed or generator.
    midpoint_sigma:
        Device-to-device variation of the logistic midpoint current, as
        a fraction (e.g. 0.02 for 2 %).
    """

    n: int
    characteristic: SwitchingCharacteristic = field(
        default_factory=SwitchingCharacteristic.from_paper_anchors
    )
    seed: int | None | np.random.Generator = None
    midpoint_sigma: float = 0.0
    _rng: np.random.Generator = field(init=False, repr=False)
    _midpoints: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n < 1:
            raise DeviceError(f"vector width must be >= 1, got {self.n}")
        if self.midpoint_sigma < 0:
            raise DeviceError(f"midpoint_sigma must be >= 0, got {self.midpoint_sigma}")
        self._rng = ensure_rng(self.seed)
        base = self.characteristic.midpoint_current
        if self.midpoint_sigma > 0:
            self._midpoints = self._rng.normal(
                base, self.midpoint_sigma * base, size=self.n
            )
        else:
            self._midpoints = np.full(self.n, base)

    def probabilities(self, current: float) -> np.ndarray:
        """Per-unit switching probability at the shared write current."""
        if current < 0:
            raise DeviceError(f"write current must be >= 0, got {current}")
        z = (current - self._midpoints) / self.characteristic.slope_current
        return 1.0 / (1.0 + np.exp(-z))

    def sample_mask(self, current: float) -> np.ndarray:
        """One stochastic binary mask (paper's vector of switched units).

        Applies the NAND fallback: if no unit switched, every column
        passes (an all-ones mask), exactly as in Fig 4c.
        """
        p = self.probabilities(current)
        mask = self._rng.random(self.n) < p
        if not mask.any():
            return np.ones(self.n, dtype=bool)
        return mask

    def expected_ones(self, current: float) -> float:
        """Expected number of 1s in the mask (before the NAND fallback)."""
        return float(self.probabilities(current).sum())


@dataclass(frozen=True)
class CMOSRng:
    """A CMOS true-RNG operating point for comparison (paper refs [8], [9]).

    Attributes are the figures the paper quotes when arguing CMOS RNGs
    are "bulky and sluggish": area, throughput, and energy per bit.
    """

    name: str = "28nm-synthesized-trng"
    area_um2: float = 375.0
    throughput_bps: float = 23.0 * MEGA
    energy_per_bit: float = 23.0 * PICO

    def __post_init__(self) -> None:
        if self.area_um2 <= 0 or self.throughput_bps <= 0 or self.energy_per_bit <= 0:
            raise DeviceError("CMOSRng figures must all be positive")

    def time_for_bits(self, bits: int) -> float:
        """Seconds needed to produce ``bits`` random bits."""
        if bits < 0:
            raise DeviceError(f"bits must be >= 0, got {bits}")
        return bits / self.throughput_bps

    def energy_for_bits(self, bits: int) -> float:
        """Joules consumed producing ``bits`` random bits."""
        if bits < 0:
            raise DeviceError(f"bits must be >= 0, got {bits}")
        return bits * self.energy_per_bit


#: The two CMOS RNG design points cited by the paper.
CMOS_RNG_YANG_ISSCC14 = CMOSRng("28nm-synthesized-trng", 375.0, 23.0 * MEGA, 23.0 * PICO)
CMOS_RNG_MATHEW_JSSC12 = CMOSRng("45nm-all-digital-trng", 4004.0, 2400.0 * MEGA, 2.9 * PICO)
