"""Device models (paper Section III-C3, Fig 4c).

* :class:`~repro.devices.mtj.MTJ` — magnetic tunnel junction resistance
  states (R_P / R_AP from TMR).
* :class:`~repro.devices.sot_mram.SOTDevice` — spin-orbit-torque MRAM
  cell with the sigmoidal switching probability P_sw(I_write) the paper
  leverages for "natural annealing" (calibrated to the paper's anchor
  points: 353 uA -> 1 %, 420 uA -> 20 %, deterministic above 650 uA).
* :class:`~repro.devices.rng.StochasticBitSource` — N parallel SOT units
  producing the stochastic binary mask vector.
* :class:`~repro.devices.rng.CMOSRng` — CMOS true-RNG baseline with the
  area/throughput figures the paper cites ([8], [9]).
* :mod:`~repro.devices.variation` — device-to-device variation models.
"""

from repro.devices.mtj import MTJ, MTJState
from repro.devices.sot_mram import (
    DETERMINISTIC_MIN_CURRENT,
    STOCHASTIC_CURRENT_RANGE,
    SOTDevice,
    SwitchingCharacteristic,
)
from repro.devices.rng import CMOSRng, StochasticBitSource
from repro.devices.variation import DeviceVariation

__all__ = [
    "MTJ",
    "MTJState",
    "SOTDevice",
    "SwitchingCharacteristic",
    "STOCHASTIC_CURRENT_RANGE",
    "DETERMINISTIC_MIN_CURRENT",
    "StochasticBitSource",
    "CMOSRng",
    "DeviceVariation",
]
