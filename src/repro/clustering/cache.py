"""Distance-submatrix cache keyed by (instance, cluster).

The hierarchical pipeline repeatedly slices the instance metric:
endpoint fixing needs the cross-block between every consecutive
cluster pair (twice, when the entry/exit child-conflict retry kicks
in), and level-1 ordering needs each cluster's square submatrix.  On
large instances these slices are the dominant host-side cost after
clustering, and the near-memory reuse literature (Sundara Raman et
al.) shows exactly this kind of sub-problem data reuse dominating
end-to-end latency.

One :class:`SubmatrixCache` lives for the duration of a hierarchical
solve.  Callers key blocks by stable cluster identifiers (level, node),
so a block is sliced from the instance at most once per solve; the
conflict-retry path subsets rows of the cached block instead of
re-slicing the metric.
"""

from __future__ import annotations

import numpy as np

from repro.tsp.instance import TSPInstance

#: Above this many pairwise entries, cross-blocks are not materialized
#: (endpoint fixing falls back to the KD-tree path instead).
PAIR_BLOCK_LIMIT = 4096


class SubmatrixCache:
    """Memoized distance sub-blocks for one instance.

    Keys are caller-chosen hashables identifying a cluster (the
    pipeline uses ``(level, node)`` tuples); the cache never inspects
    them beyond hashing.  Returned arrays are shared and **read-only**:
    since every block is marked ``writeable=False`` at insertion, the
    contract is enforced, not advisory — an in-place write through a
    returned block raises ``ValueError`` instead of silently poisoning
    the cache for every later consumer.  Callers needing a mutable
    block must copy it.

    ``retain_cross_blocks=False`` skips memoizing the rectangular
    pair blocks: within one solve each cluster adjacency is requested
    once (the conflict retry subsets the block it already holds), so a
    per-solve cache would retain O(pairs x block) memory for zero
    reuse.  Caller-shared caches keep the default ``True`` so repeated
    solves over one hierarchy reuse the slices.
    """

    def __init__(
        self, instance: TSPInstance, retain_cross_blocks: bool = True
    ) -> None:
        self.instance = instance
        self.retain_cross_blocks = retain_cross_blocks
        self._square: dict[object, np.ndarray] = {}
        self._cross: dict[tuple[object, object], np.ndarray] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def submatrix(self, key: object, indices: np.ndarray) -> np.ndarray:
        """Square pairwise block over ``indices``, memoized under ``key``."""
        block = self._square.get(key)
        if block is not None:
            self.hits += 1
            return block
        self.misses += 1
        block = self.instance.distance_submatrix(np.asarray(indices, dtype=int))
        block.setflags(write=False)
        self._square[key] = block
        return block

    def cross_block(
        self,
        key_a: object,
        indices_a: np.ndarray,
        key_b: object,
        indices_b: np.ndarray,
    ) -> np.ndarray:
        """Rectangular block ``(len(a), len(b))``, memoized per key pair."""
        key = (key_a, key_b)
        block = self._cross.get(key)
        if block is not None:
            self.hits += 1
            return block
        self.misses += 1
        block = self.instance.distance_block(
            np.asarray(indices_a, dtype=int), np.asarray(indices_b, dtype=int)
        )
        # Non-retained blocks are frozen too: the read-only contract is
        # uniform, so callers cannot depend on mutability that silently
        # disappears when a shared cache replaces a per-solve one.
        block.setflags(write=False)
        if self.retain_cross_blocks:
            self._cross[key] = block
        return block

    # ------------------------------------------------------------------
    @property
    def slices_computed(self) -> int:
        """How many blocks were actually sliced from the instance."""
        return self.misses

    def clear(self) -> None:
        self._square.clear()
        self._cross.clear()
