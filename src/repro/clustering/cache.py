"""Distance-submatrix cache keyed by (instance, cluster).

The hierarchical pipeline repeatedly slices the instance metric:
endpoint fixing needs the cross-block between every consecutive
cluster pair (twice, when the entry/exit child-conflict retry kicks
in), and level-1 ordering needs each cluster's square submatrix.  On
large instances these slices are the dominant host-side cost after
clustering, and the near-memory reuse literature (Sundara Raman et
al.) shows exactly this kind of sub-problem data reuse dominating
end-to-end latency.

One :class:`SubmatrixCache` lives for the duration of a hierarchical
solve.  Callers key blocks by stable cluster identifiers (level, node),
so a block is sliced from the instance at most once per solve; the
conflict-retry path subsets rows of the cached block instead of
re-slicing the metric.

The cache also has a **size-budgeted coordinate-lazy mode**
(``budget_bytes``): blocks count against a byte budget and the least
recently used are dropped when it overflows.  Eviction is always safe —
every block is recomputable from the instance coordinates on demand —
so the budget turns the cache from an unbounded O(clusters x block²)
retainer into a bounded working set, which is what lets one solve of an
n=10^5 instance hold only the sub-blocks it is actively ordering.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.tsp.instance import TSPInstance

#: Above this many pairwise entries, cross-blocks are not materialized
#: (endpoint fixing falls back to the KD-tree path instead).
PAIR_BLOCK_LIMIT = 4096

#: Default byte budget applied by the pipeline's per-solve caches on
#: large instances (small solves retain everything; the budget only
#: matters once block volume could rival an n x n matrix).
DEFAULT_CACHE_BUDGET = 128 * 1024 * 1024


class SubmatrixCache:
    """Memoized distance sub-blocks for one instance.

    Keys are caller-chosen hashables identifying a cluster (the
    pipeline uses ``(level, node)`` tuples); the cache never inspects
    them beyond hashing.  Returned arrays are shared and **read-only**:
    since every block is marked ``writeable=False`` at insertion, the
    contract is enforced, not advisory — an in-place write through a
    returned block raises ``ValueError`` instead of silently poisoning
    the cache for every later consumer.  Callers needing a mutable
    block must copy it.

    ``retain_cross_blocks=False`` skips memoizing the rectangular
    pair blocks: within one solve each cluster adjacency is requested
    once (the conflict retry subsets the block it already holds), so a
    per-solve cache would retain O(pairs x block) memory for zero
    reuse.  Caller-shared caches keep the default ``True`` so repeated
    solves over one hierarchy reuse the slices.

    ``budget_bytes`` bounds total retained bytes (LRU eviction; blocks
    larger than the whole budget are returned uncached).  ``None``
    retains everything, the historical behavior.
    """

    def __init__(
        self,
        instance: TSPInstance,
        retain_cross_blocks: bool = True,
        budget_bytes: int | None = None,
    ) -> None:
        self.instance = instance
        self.retain_cross_blocks = retain_cross_blocks
        self.budget_bytes = budget_bytes
        self._square: OrderedDict[object, np.ndarray] = OrderedDict()
        self._cross: OrderedDict[tuple[object, object], np.ndarray] = (
            OrderedDict()
        )
        self._held_bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def _get(self, store: OrderedDict, key: object) -> np.ndarray | None:
        block = store.get(key)
        if block is not None and self.budget_bytes is not None:
            store.move_to_end(key)
        return block

    def _put(self, store: OrderedDict, key: object, block: np.ndarray) -> None:
        budget = self.budget_bytes
        if budget is not None and block.nbytes > budget:
            return  # oversized for the whole budget: hand out uncached
        store[key] = block
        self._held_bytes += block.nbytes
        if budget is None:
            return
        while self._held_bytes > budget and len(self._square) + len(
            self._cross
        ) > 1:
            victim_store = self._lru_store()
            _key, victim = victim_store.popitem(last=False)
            self._held_bytes -= victim.nbytes
            self.evictions += 1

    def _lru_store(self) -> OrderedDict:
        """The store holding the globally least-recently-used block."""
        if not self._square:
            return self._cross
        if not self._cross:
            return self._square
        # Two stores, one LRU order: evict square blocks first — cross
        # blocks are re-requested by the conflict-retry path within the
        # same fixing step, square blocks only across levels.
        return self._square

    # ------------------------------------------------------------------
    def submatrix(self, key: object, indices: np.ndarray) -> np.ndarray:
        """Square pairwise block over ``indices``, memoized under ``key``."""
        block = self._get(self._square, key)
        if block is not None:
            self.hits += 1
            return block
        self.misses += 1
        block = self.instance.distance_submatrix(np.asarray(indices, dtype=int))
        block.setflags(write=False)
        self._put(self._square, key, block)
        return block

    def cross_block(
        self,
        key_a: object,
        indices_a: np.ndarray,
        key_b: object,
        indices_b: np.ndarray,
    ) -> np.ndarray:
        """Rectangular block ``(len(a), len(b))``, memoized per key pair."""
        key = (key_a, key_b)
        block = self._get(self._cross, key)
        if block is not None:
            self.hits += 1
            return block
        self.misses += 1
        block = self.instance.distance_block(
            np.asarray(indices_a, dtype=int), np.asarray(indices_b, dtype=int)
        )
        # Non-retained blocks are frozen too: the read-only contract is
        # uniform, so callers cannot depend on mutability that silently
        # disappears when a shared cache replaces a per-solve one.
        block.setflags(write=False)
        if self.retain_cross_blocks:
            self._put(self._cross, key, block)
        return block

    # ------------------------------------------------------------------
    @property
    def slices_computed(self) -> int:
        """How many blocks were actually sliced from the instance."""
        return self.misses

    @property
    def held_bytes(self) -> int:
        """Bytes currently retained across both stores."""
        return self._held_bytes

    def clear(self) -> None:
        self._square.clear()
        self._cross.clear()
        self._held_bytes = 0
