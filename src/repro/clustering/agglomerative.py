"""Ward-linkage agglomerative clustering, from scratch.

The paper clusters with *agglomerative* hierarchical clustering under
Ward linkage (Section IV-3), preferring its compact irregular clusters
over k-means' spherical ones.  This implementation uses the
nearest-neighbour-chain algorithm with the centroid/size form of the
Ward dissimilarity:

    d(A, B) = |A||B| / (|A| + |B|) * ||centroid_A - centroid_B||^2

which equals the increase in total within-cluster variance caused by
merging A and B.  NN-chain needs only O(n) memory (no distance matrix)
and O(n^2) time, and Ward linkage is *reducible*, so the dendrogram it
produces is exactly the one a naive greedy merge would build.

Scalability: exact NN-chain is used up to ``exact_threshold`` points;
beyond that the point set is recursively median-split (KD fashion) into
blocks that are clustered exactly, a standard locality approximation
whose only error is at block boundaries (documented in DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError

#: Largest level clustered by exact NN-chain before KD-splitting kicks in.
DEFAULT_EXACT_THRESHOLD = 4096


def ward_linkage_matrix(points: np.ndarray) -> np.ndarray:
    """The full Ward dendrogram as an ``(n-1, 4)`` scipy-style linkage.

    Columns: merged cluster ids (original points are 0..n-1, merges are
    n, n+1, ...), merge dissimilarity (sqrt of the Ward distance, the
    scipy convention), and new cluster size.
    """
    points = _check_points(points)
    n = points.shape[0]
    merges = _nn_chain_merges(points)
    # Convert to scipy convention: sort merges by height, relabel.
    order = np.argsort([m[2] for m in merges], kind="stable")
    linkage = np.zeros((n - 1, 4))
    cluster_ids = {i: i for i in range(n)}  # slot -> current dendrogram id
    sizes = {i: 1 for i in range(n)}
    next_id = n
    for row, merge_idx in enumerate(order):
        a, b, height, new_size = merges[merge_idx]
        ida, idb = cluster_ids[a], cluster_ids[b]
        linkage[row] = (min(ida, idb), max(ida, idb), np.sqrt(height), new_size)
        cluster_ids[a] = next_id
        sizes[next_id] = new_size
        next_id += 1
    return linkage


def ward_labels(
    points: np.ndarray,
    n_clusters: int,
    exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
) -> np.ndarray:
    """Cluster ``points`` into ``n_clusters`` groups under Ward linkage.

    Returns integer labels ``0..n_clusters-1`` (label ids are dense but
    arbitrary).  Uses exact NN-chain up to ``exact_threshold`` points
    and KD-split blocks beyond.
    """
    points = _check_points(points)
    n = points.shape[0]
    if not 1 <= n_clusters <= n:
        raise ClusteringError(
            f"n_clusters must be in 1..{n}, got {n_clusters}"
        )
    if n_clusters == n:
        return np.arange(n)
    if n <= exact_threshold:
        return _ward_labels_exact(points, n_clusters)
    return _ward_labels_kdsplit(points, n_clusters, exact_threshold)


def cluster_with_max_size(
    points: np.ndarray,
    max_size: int,
    exact_threshold: int = DEFAULT_EXACT_THRESHOLD,
) -> np.ndarray:
    """Ward clustering into ceil(n / max_size) groups, none exceeding ``max_size``.

    Ward merging alone does not bound cluster sizes, so oversized
    clusters are recursively re-split with Ward until every cluster
    fits an Ising macro (the paper's "maximum TSP size confidently
    solvable by an Ising macro").
    """
    points = _check_points(points)
    if max_size < 1:
        raise ClusteringError(f"max_size must be >= 1, got {max_size}")
    n = points.shape[0]
    n_clusters = int(np.ceil(n / max_size))
    labels = ward_labels(points, n_clusters, exact_threshold)
    return _split_oversized(points, labels, max_size, exact_threshold)


# ----------------------------------------------------------------------
# internals
# ----------------------------------------------------------------------
def _check_points(points: np.ndarray) -> np.ndarray:
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] < 1:
        raise ClusteringError(f"points must be (n, d) with n >= 1, got {points.shape}")
    return points


def _ward_distance_rows(
    centroid: np.ndarray, size: float, centroids: np.ndarray, sizes: np.ndarray
) -> np.ndarray:
    """Ward dissimilarity from one cluster to many (vectorized)."""
    diff = centroids - centroid
    sq = (diff * diff).sum(axis=1)
    return (size * sizes) / (size + sizes) * sq


def _nn_chain_merges(points: np.ndarray) -> list[tuple[int, int, float, int]]:
    """All n-1 merges via NN-chain: (slot_a, slot_b, ward_dist, new_size).

    Slot ``a`` survives each merge (holding the union), slot ``b``
    deactivates.  Merge heights are *not* sorted.
    """
    n = points.shape[0]
    centroids = points.copy()
    sizes = np.ones(n)
    active = np.ones(n, dtype=bool)
    merges: list[tuple[int, int, float, int]] = []
    chain: list[int] = []
    remaining = n
    while remaining > 1:
        if not chain:
            chain.append(int(np.flatnonzero(active)[0]))
        top = chain[-1]
        dists = _ward_distance_rows(centroids[top], sizes[top], centroids, sizes)
        dists[~active] = np.inf
        dists[top] = np.inf
        nearest = int(np.argmin(dists))
        if len(chain) >= 2 and nearest == chain[-2]:
            a, b = chain.pop(), chain.pop()
            height = float(
                _ward_distance_rows(
                    centroids[a], sizes[a], centroids[b : b + 1], sizes[b : b + 1]
                )[0]
            )
            total = sizes[a] + sizes[b]
            centroids[a] = (sizes[a] * centroids[a] + sizes[b] * centroids[b]) / total
            sizes[a] = total
            active[b] = False
            merges.append((a, b, height, int(total)))
            remaining -= 1
        else:
            chain.append(nearest)
    return merges


def _ward_labels_exact(points: np.ndarray, n_clusters: int) -> np.ndarray:
    n = points.shape[0]
    merges = _nn_chain_merges(points)
    order = np.argsort([m[2] for m in merges], kind="stable")
    parent = np.arange(n)

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    # Apply the n - n_clusters cheapest merges (dendrogram cut).
    for merge_idx in order[: n - n_clusters]:
        a, b, _, _ = merges[merge_idx]
        ra, rb = find(a), find(b)
        parent[rb] = ra
    roots = np.fromiter((find(i) for i in range(n)), dtype=int, count=n)
    _, labels = np.unique(roots, return_inverse=True)
    return labels


def _ward_labels_kdsplit(
    points: np.ndarray, n_clusters: int, exact_threshold: int
) -> np.ndarray:
    """Locality-approximate Ward for very large point sets.

    Recursively median-split along the widest axis until blocks fit the
    exact solver, allocate each block a share of clusters proportional
    to its size, and cluster blocks independently.
    """
    n = points.shape[0]
    labels = np.empty(n, dtype=int)

    def recurse(indices: np.ndarray, k: int, next_label: int) -> int:
        if k <= 1:
            labels[indices] = next_label
            return next_label + 1
        if indices.size <= exact_threshold:
            sub = _ward_labels_exact(points[indices], min(k, indices.size))
            labels[indices] = sub + next_label
            return next_label + int(sub.max()) + 1
        block = points[indices]
        axis = int(np.argmax(block.max(axis=0) - block.min(axis=0)))
        median = np.median(block[:, axis])
        left_mask = block[:, axis] <= median
        # Guard against degenerate splits on duplicated coordinates.
        if left_mask.all() or not left_mask.any():
            half = indices.size // 2
            sorted_idx = np.argsort(block[:, axis], kind="stable")
            left_mask = np.zeros(indices.size, dtype=bool)
            left_mask[sorted_idx[:half]] = True
        left = indices[left_mask]
        right = indices[~left_mask]
        k_left = max(1, min(k - 1, int(round(k * left.size / indices.size))))
        k_right = k - k_left
        next_label = recurse(left, k_left, next_label)
        return recurse(right, k_right, next_label)

    recurse(np.arange(n), n_clusters, 0)
    return labels


def _split_oversized(
    points: np.ndarray, labels: np.ndarray, max_size: int, exact_threshold: int
) -> np.ndarray:
    """Recursively re-split any cluster larger than ``max_size``."""
    labels = labels.copy()
    next_label = int(labels.max()) + 1
    # Iterate until fixed point; each pass strictly shrinks violators.
    while True:
        sizes = np.bincount(labels)
        oversized = np.flatnonzero(sizes > max_size)
        if oversized.size == 0:
            return labels
        for label in oversized:
            members = np.flatnonzero(labels == label)
            parts = int(np.ceil(members.size / max_size))
            sub = ward_labels(points[members], parts, exact_threshold)
            # Part 0 keeps the old label, the rest get fresh ones.
            for part in range(1, parts):
                labels[members[sub == part]] = next_label
                next_label += 1
