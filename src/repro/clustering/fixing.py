"""Inter-cluster endpoint fixing (paper Section IV-2).

Unlike HVC, which co-optimizes intra- and inter-cluster routes on one
sparse crossbar, TAXI *fixes* each cluster's first and last cities
before solving it: for consecutive clusters (A, B) in the current route
order, the closest leaf-city pair (a in A, b in B) pins ``a`` as A's
exit and ``b`` as B's entry.  Sub-problem solutions therefore can never
degrade the inter-cluster route, and every cluster of a level can be
solved in parallel.

Conflict handling (the paper leaves it unspecified): if a cluster's
chosen exit would fall in the same child sub-cluster as its entry while
other children exist, the next-closest pair avoiding that child is
used, so the child path has distinct first/last children whenever
possible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.cache import PAIR_BLOCK_LIMIT, SubmatrixCache
from repro.errors import ClusteringError
from repro.tsp.instance import TSPInstance
from repro.tsp.neighbors import closest_pair_between


@dataclass(frozen=True)
class EndpointFixing:
    """Endpoint assignment for one cluster in the route order.

    ``entry_leaf``/``exit_leaf`` are original city ids; for the cyclic
    top level every cluster has both.
    """

    entry_leaf: int
    exit_leaf: int


def fix_level_endpoints(
    instance: TSPInstance,
    leaves_in_order: list[np.ndarray],
    child_of_leaf: list[dict[int, int]] | None = None,
    cache: SubmatrixCache | None = None,
    cluster_keys: list[object] | None = None,
) -> list[EndpointFixing]:
    """Fix entry/exit leaves for an ordered (cyclic) cluster sequence.

    Parameters
    ----------
    instance:
        The TSP instance (for distances).
    leaves_in_order:
        ``leaves_in_order[t]`` are the original city ids under the
        ``t``-th cluster of the route.  The sequence is treated as
        cyclic (the global tour is a cycle at every level).
    child_of_leaf:
        Optional per-cluster map from leaf id to the child sub-cluster
        index containing it; enables the entry/exit child-conflict
        avoidance described in the module docstring.
    cache:
        Optional :class:`~repro.clustering.cache.SubmatrixCache`; each
        cluster pair's cross-block is then sliced from the instance at
        most once — the conflict-avoidance retry subsets rows of the
        cached block instead of re-slicing the metric per child.
        Passing a cache requires ``cluster_keys``: position-derived
        default keys would silently alias different cluster sets
        across calls sharing the cache.
    cluster_keys:
        Stable cache keys aligned with ``leaves_in_order`` (the
        pipeline passes ``(level, node)``); defaults to the route
        positions, which are only unique within one call.

    Returns
    -------
    One :class:`EndpointFixing` per cluster, aligned with the input.
    """
    count = len(leaves_in_order)
    if count < 2:
        raise ClusteringError("endpoint fixing needs at least 2 clusters")
    if cache is None:
        cache = SubmatrixCache(instance, retain_cross_blocks=False)
    elif cluster_keys is None:
        raise ClusteringError(
            "a shared cache needs explicit cluster_keys: position-based "
            "defaults would alias unrelated clusters across calls"
        )
    if cluster_keys is None:
        cluster_keys = list(range(count))
    elif len(cluster_keys) != count:
        raise ClusteringError(
            f"{len(cluster_keys)} cluster keys for {count} clusters"
        )
    # pair[t] joins cluster t to cluster (t+1) % count.
    exit_leaf = [-1] * count
    entry_leaf = [-1] * count
    for t in range(count):
        nxt = (t + 1) % count
        group_a = leaves_in_order[t]
        group_b = leaves_in_order[nxt]
        forbidden_child = None
        if child_of_leaf is not None and entry_leaf[t] >= 0:
            forbidden_child = child_of_leaf[t].get(entry_leaf[t])
        a, b = _closest_pair_avoiding(
            cache,
            cluster_keys[t],
            group_a,
            cluster_keys[nxt],
            group_b,
            child_of_leaf[t] if child_of_leaf is not None else None,
            forbidden_child,
        )
        exit_leaf[t] = a
        entry_leaf[nxt] = b
    return [EndpointFixing(entry_leaf[t], exit_leaf[t]) for t in range(count)]


def _closest_pair_avoiding(
    cache: SubmatrixCache,
    key_a: object,
    group_a: np.ndarray,
    key_b: object,
    group_b: np.ndarray,
    child_map: dict[int, int] | None,
    forbidden_child: int | None,
) -> tuple[int, int]:
    """Closest pair with A's leaf preferably outside ``forbidden_child``."""
    instance = cache.instance
    group_a = np.asarray(group_a, dtype=int)
    group_b = np.asarray(group_b, dtype=int)
    allowed_rows: np.ndarray | None = None
    if (
        child_map is not None
        and forbidden_child is not None
        and group_a.size > 1
    ):
        mask = np.asarray(
            [child_map.get(int(leaf)) != forbidden_child for leaf in group_a]
        )
        if mask.any():
            allowed_rows = np.flatnonzero(mask)
    if group_a.size * group_b.size > PAIR_BLOCK_LIMIT:
        # Big pair: stay on the KD-tree path rather than materializing
        # (and caching) an oversized cross-block.
        rows = group_a if allowed_rows is None else group_a[allowed_rows]
        a, b, _ = closest_pair_between(instance, rows, group_b)
        return a, b
    block = cache.cross_block(key_a, group_a, key_b, group_b)
    view = block if allowed_rows is None else block[allowed_rows]
    ai, bi = np.unravel_index(int(np.argmin(view)), view.shape)
    if allowed_rows is not None:
        ai = int(allowed_rows[ai])
    return int(group_a[ai]), int(group_b[bi])


def centroid_distance_matrix(centroids: np.ndarray) -> np.ndarray:
    """Euclidean distance matrix between cluster centroids.

    Upper hierarchy levels order *clusters*, whose pairwise distances
    the paper takes between centroids.
    """
    centroids = np.asarray(centroids, dtype=float)
    if centroids.ndim != 2:
        raise ClusteringError(f"centroids must be (k, 2), got {centroids.shape}")
    diff = centroids[:, None, :] - centroids[None, :, :]
    return np.sqrt((diff * diff).sum(axis=2))
