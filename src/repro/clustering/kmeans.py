"""K-means clustering (the baselines' clustering choice).

HVC [4], IMA [6], and CIMA [7] all cluster with k-means; the paper
argues Ward agglomerative produces compact *irregular* clusters that
suit TSP decomposition better than k-means' spherical ones
(Section IV-3).  This Lloyd's-algorithm implementation with k-means++
seeding powers those baselines and the clustering ablation (E9).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError
from repro.utils.rng import ensure_rng


def kmeans_labels(
    points: np.ndarray,
    n_clusters: int,
    seed: int | None | np.random.Generator = 0,
    max_iter: int = 100,
    tol: float = 1e-6,
) -> np.ndarray:
    """Lloyd's k-means with k-means++ initialization.

    Returns dense integer labels.  Empty clusters are re-seeded from
    the point currently farthest from its centroid.
    """
    points = np.asarray(points, dtype=float)
    if points.ndim != 2 or points.shape[0] < 1:
        raise ClusteringError(f"points must be (n, d), got {points.shape}")
    n = points.shape[0]
    if not 1 <= n_clusters <= n:
        raise ClusteringError(f"n_clusters must be in 1..{n}, got {n_clusters}")
    if n_clusters == n:
        return np.arange(n)
    rng = ensure_rng(seed)
    centroids = _kmeanspp_init(points, n_clusters, rng)
    labels = np.zeros(n, dtype=int)
    for _ in range(max_iter):
        distances = _sq_distances(points, centroids)
        new_labels = np.argmin(distances, axis=1)
        # Re-seed empty clusters from the worst-served point.
        counts = np.bincount(new_labels, minlength=n_clusters)
        for empty in np.flatnonzero(counts == 0):
            worst = int(np.argmax(distances[np.arange(n), new_labels]))
            new_labels[worst] = empty
            counts = np.bincount(new_labels, minlength=n_clusters)
        shift = 0.0
        for k in range(n_clusters):
            members = points[new_labels == k]
            if members.size:
                new_centroid = members.mean(axis=0)
                shift = max(shift, float(((new_centroid - centroids[k]) ** 2).sum()))
                centroids[k] = new_centroid
        labels = new_labels
        if shift < tol:
            break
    return labels


def kmeans_with_max_size(
    points: np.ndarray,
    max_size: int,
    seed: int | None | np.random.Generator = 0,
) -> np.ndarray:
    """K-means into ceil(n/max_size) clusters with oversized re-splits.

    The k-means counterpart of
    :func:`repro.clustering.agglomerative.cluster_with_max_size`,
    used by the IMA/CIMA baselines and the clustering ablation.
    """
    points = np.asarray(points, dtype=float)
    if max_size < 1:
        raise ClusteringError(f"max_size must be >= 1, got {max_size}")
    rng = ensure_rng(seed)
    n = points.shape[0]
    labels = kmeans_labels(points, int(np.ceil(n / max_size)), rng)
    next_label = int(labels.max()) + 1
    while True:
        sizes = np.bincount(labels)
        oversized = np.flatnonzero(sizes > max_size)
        if oversized.size == 0:
            return labels
        for label in oversized:
            members = np.flatnonzero(labels == label)
            parts = int(np.ceil(members.size / max_size))
            sub = kmeans_labels(points[members], parts, rng)
            for part in range(1, parts):
                labels[members[sub == part]] = next_label
                next_label += 1


def _kmeanspp_init(
    points: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    n = points.shape[0]
    centroids = np.empty((n_clusters, points.shape[1]))
    centroids[0] = points[rng.integers(n)]
    closest_sq = ((points - centroids[0]) ** 2).sum(axis=1)
    for k in range(1, n_clusters):
        total = closest_sq.sum()
        if total <= 0:
            centroids[k:] = points[rng.integers(n, size=n_clusters - k)]
            break
        probs = closest_sq / total
        choice = rng.choice(n, p=probs)
        centroids[k] = points[choice]
        closest_sq = np.minimum(closest_sq, ((points - centroids[k]) ** 2).sum(axis=1))
    return centroids


def _sq_distances(points: np.ndarray, centroids: np.ndarray) -> np.ndarray:
    return ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
