"""Hierarchical clustering layer (paper Section IV).

* :mod:`~repro.clustering.agglomerative` — from-scratch Ward-linkage
  agglomerative clustering (nearest-neighbour-chain, O(n) memory) with
  a KD-split scalable variant for very large levels and a maximum-
  cluster-size constraint (the Ising macro capacity).
* :mod:`~repro.clustering.kmeans` — Lloyd's k-means with k-means++
  seeding (the clustering used by the HVC/IMA/CIMA baselines).
* :mod:`~repro.clustering.hierarchy` — bottom-up hierarchy builder:
  cities -> clusters -> centroids -> ... until one macro-sized level.
* :mod:`~repro.clustering.fixing` — inter-cluster endpoint fixing via
  closest city pairs (Section IV-2).
* :mod:`~repro.clustering.cache` — distance-submatrix cache keyed by
  (instance, cluster), shared by endpoint fixing and cluster ordering.
"""

from repro.clustering.agglomerative import (
    cluster_with_max_size,
    ward_labels,
    ward_linkage_matrix,
)
from repro.clustering.kmeans import kmeans_labels, kmeans_with_max_size
from repro.clustering.hierarchy import Hierarchy, HierarchyLevel, build_hierarchy
from repro.clustering.fixing import EndpointFixing, fix_level_endpoints
from repro.clustering.cache import SubmatrixCache

__all__ = [
    "SubmatrixCache",
    "ward_labels",
    "ward_linkage_matrix",
    "cluster_with_max_size",
    "kmeans_labels",
    "kmeans_with_max_size",
    "Hierarchy",
    "HierarchyLevel",
    "build_hierarchy",
    "EndpointFixing",
    "fix_level_endpoints",
]
