"""Bottom-up cluster hierarchy (paper Section IV-1).

Level 0 holds the cities themselves.  Each higher level clusters the
previous level's nodes (by their centroids) into groups of at most
``max_cluster_size``; the group centroids become the next level's
nodes.  Building stops when a level has no more nodes than one Ising
macro can hold — that level's single closed tour is the top problem.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.clustering.agglomerative import cluster_with_max_size
from repro.errors import ClusteringError
from repro.tsp.instance import TSPInstance


@dataclass
class HierarchyLevel:
    """One level of the hierarchy.

    Attributes
    ----------
    level:
        0 for cities, increasing upward.
    centroids:
        ``(k, 2)`` node centroid coordinates.
    children:
        For level > 0: ``children[i]`` lists the previous level's node
        indices grouped into node ``i``.  Empty for level 0.
    leaves:
        ``leaves[i]`` is the array of original city ids under node ``i``.
    """

    level: int
    centroids: np.ndarray
    children: list[np.ndarray] = field(default_factory=list)
    leaves: list[np.ndarray] = field(default_factory=list)

    @property
    def n_nodes(self) -> int:
        return int(self.centroids.shape[0])


@dataclass
class Hierarchy:
    """The full bottom-up hierarchy for one instance."""

    instance: TSPInstance
    max_cluster_size: int
    levels: list[HierarchyLevel]

    @property
    def depth(self) -> int:
        """Number of levels including level 0 (the cities)."""
        return len(self.levels)

    @property
    def top(self) -> HierarchyLevel:
        return self.levels[-1]

    def validate(self) -> None:
        """Check structural invariants (used by tests and after building)."""
        n = self.instance.n
        if self.levels[0].n_nodes != n:
            raise ClusteringError("level 0 must hold every city")
        for level in self.levels[1:]:
            child_total = sum(len(c) for c in level.children)
            if child_total != self.levels[level.level - 1].n_nodes:
                raise ClusteringError(
                    f"level {level.level} children do not partition level "
                    f"{level.level - 1}"
                )
            leaf_total = sum(len(leaf) for leaf in level.leaves)
            if leaf_total != n:
                raise ClusteringError(
                    f"level {level.level} leaves do not cover all cities"
                )
            for children in level.children:
                if len(children) > self.max_cluster_size:
                    raise ClusteringError(
                        f"level {level.level} has a cluster of {len(children)} "
                        f"children (max {self.max_cluster_size})"
                    )
        if self.top.n_nodes > self.max_cluster_size:
            raise ClusteringError("top level exceeds macro capacity")


def build_hierarchy(
    instance: TSPInstance,
    max_cluster_size: int,
    cluster_fn: Callable[[np.ndarray, int], np.ndarray] | None = None,
) -> Hierarchy:
    """Build the bottom-up hierarchy for ``instance``.

    Parameters
    ----------
    max_cluster_size:
        Macro capacity (the paper sweeps 12-20 in Fig 5a).
    cluster_fn:
        ``cluster_fn(points, max_size) -> labels`` override; defaults to
        Ward agglomerative
        (:func:`~repro.clustering.agglomerative.cluster_with_max_size`).
        The K-means baseline passes
        :func:`~repro.clustering.kmeans.kmeans_with_max_size`.
    """
    if max_cluster_size < 2:
        raise ClusteringError(
            f"max_cluster_size must be >= 2, got {max_cluster_size}"
        )
    if instance.coords is None:
        raise ClusteringError(
            "hierarchical clustering requires coordinate instances"
        )
    if cluster_fn is None:
        cluster_fn = cluster_with_max_size

    n = instance.n
    levels = [
        HierarchyLevel(
            level=0,
            centroids=np.asarray(instance.coords, dtype=float).copy(),
            children=[],
            # Row views of one (n, 1) array: at n=10^5 this is one
            # allocation instead of n tiny ones, with identical
            # per-node arrays.
            leaves=list(np.arange(n, dtype=int).reshape(n, 1)),
        )
    ]
    while levels[-1].n_nodes > max_cluster_size:
        below = levels[-1]
        labels = np.asarray(cluster_fn(below.centroids, max_cluster_size))
        if labels.shape != (below.n_nodes,):
            raise ClusteringError(
                f"cluster_fn returned labels of shape {labels.shape} for "
                f"{below.n_nodes} nodes"
            )
        # Group member indices by label in one stable argsort instead
        # of one O(n) scan per label: members stay ascending (stable
        # sort preserves index order within a label), so the grouping
        # is bit-identical to the flatnonzero-per-label loop it
        # replaces while costing O(n log n) total.
        sort_idx = np.argsort(labels, kind="stable")
        sorted_labels = labels[sort_idx]
        boundaries = np.flatnonzero(np.diff(sorted_labels)) + 1
        unique = sorted_labels[np.concatenate(([0], boundaries))]
        groups = np.split(sort_idx, boundaries)
        children: list[np.ndarray] = []
        leaves: list[np.ndarray] = []
        centroids = np.empty((unique.size, 2))
        for new_idx, members in enumerate(groups):
            if members.size > max_cluster_size:
                raise ClusteringError(
                    f"cluster_fn produced a cluster of {members.size} nodes "
                    f"(max {max_cluster_size})"
                )
            children.append(members)
            member_leaves = np.concatenate([below.leaves[i] for i in members])
            leaves.append(member_leaves)
            # Leaf-weighted centroid = mean of the original cities.
            centroids[new_idx] = instance.coords[member_leaves].mean(axis=0)
        if unique.size >= below.n_nodes:
            raise ClusteringError(
                "clustering failed to reduce the level size; "
                f"{below.n_nodes} -> {unique.size}"
            )
        levels.append(
            HierarchyLevel(
                level=len(levels),
                centroids=centroids,
                children=children,
                leaves=leaves,
            )
        )
    hierarchy = Hierarchy(instance, max_cluster_size, levels)
    hierarchy.validate()
    return hierarchy
