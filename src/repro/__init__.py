"""repro — reproduction of TAXI (DAC 2025).

TAXI is a traveling-salesman-problem accelerator built from
crossbar-based Ising macros with SOT-MRAM stochastic devices and a
hierarchical-clustering decomposition.  This package implements the
full system in Python: the TSP and Ising substrates, device and
crossbar models, the Ising macro and its batched chip-level solver,
Ward agglomerative clustering with endpoint fixing, the end-to-end
:class:`~repro.core.solver.TAXISolver`, comparator baselines, and a
PUMA-style architecture simulator.

Quickstart::

    from repro import TAXIConfig, TAXISolver, load_benchmark

    instance = load_benchmark(1060)
    result = TAXISolver(TAXIConfig(seed=0)).solve(instance)
    print(result.tour.length)
"""

from repro.core import (
    BatchResult,
    EngineConfig,
    TAXIConfig,
    TAXIResult,
    TAXISolver,
)
from repro.engine import run_batch, run_replicas, solve_with, solver_names
from repro.kernels import BACKENDS, resolve_backend
from repro.tsp import TSPInstance, Tour, load_benchmark
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "TAXIConfig",
    "EngineConfig",
    "TAXISolver",
    "TAXIResult",
    "BatchResult",
    "TSPInstance",
    "Tour",
    "load_benchmark",
    "run_replicas",
    "run_batch",
    "solve_with",
    "solver_names",
    "BACKENDS",
    "resolve_backend",
    "ReproError",
    "__version__",
]
