"""Small argument-validation helpers used across the library.

Each helper raises :class:`ValueError` (or a library-specific subclass
passed via ``exc``) with a message naming the offending parameter, so
call sites stay one-liners.
"""

from __future__ import annotations

import numpy as np


def check_positive(name: str, value: float, exc: type[Exception] = ValueError) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise exc(f"{name} must be positive, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    low: float,
    high: float,
    exc: type[Exception] = ValueError,
) -> float:
    """Require ``low <= value <= high``; return it for chaining."""
    if not (low <= value <= high):
        raise exc(f"{name} must be in [{low}, {high}], got {value!r}")
    return value


def check_probability(name: str, value: float, exc: type[Exception] = ValueError) -> float:
    """Require ``value`` to be a probability in [0, 1]."""
    return check_in_range(name, value, 0.0, 1.0, exc)


def check_square_matrix(name: str, matrix: np.ndarray, exc: type[Exception] = ValueError) -> np.ndarray:
    """Require ``matrix`` to be a square 2-D array; return it as ndarray."""
    arr = np.asarray(matrix)
    if arr.ndim != 2 or arr.shape[0] != arr.shape[1]:
        raise exc(f"{name} must be a square 2-D matrix, got shape {arr.shape}")
    return arr
