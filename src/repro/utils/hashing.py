"""Stable content hashes shared by the CLI, bench, and service layers.

Tour hashes make determinism checkable across entry points: the CLI
prints them, the bench pipeline grid diffs serial vs wavefront runs,
and the solve service returns them so a cached result can be compared
bit-for-bit against a cold ``repro solve`` of the same request.
"""

from __future__ import annotations

import hashlib

import numpy as np

#: Hex digits kept from the sha256 digest (plenty against collisions in
#: any realistic run set, short enough to eyeball-diff).
TOUR_HASH_LENGTH = 16


def tour_hash(order: np.ndarray) -> str:
    """Short sha256 of a tour order's canonical little-endian bytes.

    Identical hashes mean bit-identical tours, not merely equal
    lengths — a reversed tour hashes differently.
    """
    canonical = np.asarray(order).astype("<i8").tobytes()
    return hashlib.sha256(canonical).hexdigest()[:TOUR_HASH_LENGTH]
