"""Shared helpers: seeded RNG management, physical units, validation."""

from repro.utils.rng import derive_rng, ensure_rng, spawn_rngs
from repro.utils.units import (
    GIGA,
    KILO,
    MEGA,
    MICRO,
    MILLI,
    NANO,
    PICO,
    FEMTO,
    celsius_to_kelvin,
    format_engineering,
)
from repro.utils.validation import (
    check_in_range,
    check_positive,
    check_probability,
    check_square_matrix,
)

__all__ = [
    "derive_rng",
    "ensure_rng",
    "spawn_rngs",
    "GIGA",
    "MEGA",
    "KILO",
    "MILLI",
    "MICRO",
    "NANO",
    "PICO",
    "FEMTO",
    "celsius_to_kelvin",
    "format_engineering",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_square_matrix",
]
