"""Physical unit constants and formatting.

The device, circuit, and architecture models all work in SI base units
(seconds, joules, amperes, ohms, watts).  These constants make literal
values in the code read like the paper's numbers (e.g. ``420 * MICRO``
amperes, ``9 * NANO`` seconds).
"""

from __future__ import annotations

GIGA = 1e9
MEGA = 1e6
KILO = 1e3
MILLI = 1e-3
MICRO = 1e-6
NANO = 1e-9
PICO = 1e-12
FEMTO = 1e-15

_PREFIXES = [
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "u"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
]


def celsius_to_kelvin(celsius: float) -> float:
    """Convert a temperature from degrees Celsius to kelvin."""
    return celsius + 273.15


def format_engineering(value: float, unit: str = "", digits: int = 3) -> str:
    """Format ``value`` with an engineering SI prefix (e.g. ``45.98 pJ``).

    Zero and non-finite values are printed without a prefix.
    """
    if value == 0 or not _is_finite(value):
        return f"{value:.{digits}g} {unit}".rstrip()
    magnitude = abs(value)
    for scale, prefix in _PREFIXES:
        if magnitude >= scale:
            return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()
    scale, prefix = _PREFIXES[-1]
    return f"{value / scale:.{digits}g} {prefix}{unit}".rstrip()


def _is_finite(value: float) -> bool:
    return value == value and value not in (float("inf"), float("-inf"))
