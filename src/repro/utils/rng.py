"""Seeded random-number-generator helpers.

All stochastic components of the library (device switching, annealing,
instance generation) accept either an integer seed, ``None``, or a
pre-built :class:`numpy.random.Generator`.  Centralizing the coercion
here keeps every experiment reproducible from a single seed.
"""

from __future__ import annotations

import numpy as np

_RNGLike = "int | None | np.random.Generator"


def ensure_rng(seed_or_rng: int | None | np.random.Generator) -> np.random.Generator:
    """Coerce ``seed_or_rng`` into a :class:`numpy.random.Generator`.

    Parameters
    ----------
    seed_or_rng:
        ``None`` (fresh OS entropy), an integer seed, or an existing
        generator (returned unchanged).
    """
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def derive_rng(rng: np.random.Generator, stream: int) -> np.random.Generator:
    """Derive an independent child generator for a named sub-stream.

    Used when one seed must drive several logically independent random
    processes (e.g. the stochastic mask of each Ising macro) without the
    processes perturbing each other's sequences.
    """
    seed = int(rng.integers(0, 2**63 - 1)) ^ (0x9E3779B97F4A7C15 * (stream + 1)) % 2**63
    return np.random.default_rng(seed)


def replica_seeds(seed: int | None, n: int) -> list[int]:
    """``n`` deterministic integer seeds derived from one master seed.

    The engine runner hands one of these to each replica so a batch is
    reproducible bit-for-bit regardless of worker count or completion
    order: the seed list depends only on ``(seed, n)``.  ``seed=None``
    draws the master entropy from the OS (non-reproducible by request).
    """
    if n < 0:
        raise ValueError(f"cannot derive a negative number of seeds: {n}")
    children = np.random.SeedSequence(seed).spawn(n)
    return [int(child.generate_state(1, dtype=np.uint64)[0] % (2**63 - 1)) for child in children]


def spawn_rngs(seed_or_rng: int | None | np.random.Generator, n: int) -> list[np.random.Generator]:
    """Create ``n`` independent generators from one seed.

    Uses numpy's ``SeedSequence.spawn`` so the children are statistically
    independent regardless of how many are requested.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of RNGs: {n}")
    if isinstance(seed_or_rng, np.random.Generator):
        children = seed_or_rng.bit_generator.seed_seq.spawn(n)  # type: ignore[union-attr]
    else:
        children = np.random.SeedSequence(seed_or_rng).spawn(n)
    return [np.random.default_rng(child) for child in children]
